package propagators

import (
	"math"
	"testing"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/ir"
	"devigo/internal/mpi"
)

func serialCfg(shape []int, so int) Config {
	return Config{Shape: shape, SpaceOrder: so, NBL: 4, Velocity: 1.5}
}

func TestAcousticModelStructure(t *testing.T) {
	m, err := Acoustic(serialCfg([]int{24, 24, 24}, 8))
	if err != nil {
		t.Fatal(err)
	}
	if m.WorkingSetFields != 5 {
		t.Errorf("working set = %d, want 5 (paper)", m.WorkingSetFields)
	}
	if len(m.Eqs) != 1 {
		t.Errorf("acoustic should lower to 1 update equation")
	}
	if m.CriticalDt <= 0 {
		t.Error("critical dt missing")
	}
	// One cluster; halo on u only (m and damp are read centred).
	clusters, err := ir.Lower(m.Eqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("acoustic clusters = %d, want 1", len(clusters))
	}
	if !clusters[0].HaloReads["u"][0] {
		t.Error("u halo read missing")
	}
	if len(clusters[0].HaloReads) != 1 {
		t.Errorf("only u should need halos, got %v", clusters[0].HaloReads)
	}
	// SDO 8 -> radius 4 per dimension.
	for d, r := range clusters[0].Radius {
		if r != 4 {
			t.Errorf("radius[%d] = %d, want 4", d, r)
		}
	}
}

func TestElasticModelStructure(t *testing.T) {
	m, err := Elastic(serialCfg([]int{20, 20, 20}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if m.WorkingSetFields != 22 {
		t.Errorf("3-D elastic working set = %d, want 22 (paper)", m.WorkingSetFields)
	}
	if len(m.Eqs) != 9 {
		t.Errorf("3-D elastic should have 9 updates, got %d", len(m.Eqs))
	}
	clusters, err := ir.Lower(m.Eqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Velocity cluster then stress cluster (stress reads v[t+1]).
	if len(clusters) != 2 {
		t.Fatalf("elastic clusters = %d, want 2", len(clusters))
	}
	if !clusters[1].HaloReads["vx"][1] {
		t.Error("stress cluster must exchange v[t+1] halos")
	}
}

func TestViscoelasticModelStructure(t *testing.T) {
	m, err := Viscoelastic(serialCfg([]int{20, 20, 20}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Eqs) != 15 {
		t.Errorf("3-D viscoelastic should have 15 stencil updates (paper), got %d", len(m.Eqs))
	}
	if m.WorkingSetFields != 35 {
		t.Errorf("working set = %d, want 35 (paper quotes 36)", m.WorkingSetFields)
	}
	clusters, err := ir.Lower(m.Eqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// v | r+tau: the memory-variable and stress updates fuse (stress reads
	// r[t+1] centred only).
	if len(clusters) != 2 {
		t.Fatalf("viscoelastic clusters = %d, want 2", len(clusters))
	}
}

func TestTTIModelStructure(t *testing.T) {
	m, err := TTI(serialCfg([]int{16, 16}, 4))
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := ir.Lower(m.Eqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("tti clusters = %d, want 1 (p and q read only old levels)", len(clusters))
	}
	// The rotated Laplacian has a far higher flop count than acoustic.
	ac, _ := Acoustic(serialCfg([]int{16, 16}, 4))
	acC, _ := ir.Lower(ac.Eqs, 2)
	if clusters[0].FlopsPerPoint() < 3*acC[0].FlopsPerPoint() {
		t.Errorf("tti flops (%d) should dwarf acoustic (%d)",
			clusters[0].FlopsPerPoint(), acC[0].FlopsPerPoint())
	}
	// Rotated stencil reads beyond the plain Laplacian radius of so/2.
	if clusters[0].Radius[0] <= 2 {
		t.Errorf("tti radius = %v, expected cross-derivative widening", clusters[0].Radius)
	}
}

func runSerial(t *testing.T, name string, shape []int, so, nt int) *RunResult {
	t.Helper()
	m, err := Build(name, serialCfg(shape, so))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, nil, RunConfig{NT: nt, NReceivers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAcousticPropagatesEnergy(t *testing.T) {
	res := runSerial(t, "acoustic", []int{32, 32}, 4, 60)
	if res.Norm <= 0 || math.IsNaN(res.Norm) || math.IsInf(res.Norm, 0) {
		t.Fatalf("field norm = %v", res.Norm)
	}
	// Receivers away from the source must eventually record signal.
	last := res.Receivers[len(res.Receivers)-1]
	any := false
	for _, v := range last {
		if math.Abs(v) > 1e-12 {
			any = true
		}
	}
	if !any {
		t.Error("no energy reached the receivers")
	}
}

func TestAllModelsRunStable2D(t *testing.T) {
	for _, name := range ModelNames() {
		t.Run(name, func(t *testing.T) {
			res := runSerial(t, name, []int{24, 24}, 4, 40)
			if math.IsNaN(res.Norm) || math.IsInf(res.Norm, 0) {
				t.Fatalf("%s norm = %v", name, res.Norm)
			}
			if res.Norm == 0 {
				t.Fatalf("%s produced a silent field", name)
			}
			if res.Perf.PointsUpdated == 0 {
				t.Error("no points updated")
			}
		})
	}
}

func TestAllModelsRunStable3D(t *testing.T) {
	if testing.Short() {
		t.Skip("3-D smoke test skipped in -short")
	}
	for _, name := range ModelNames() {
		t.Run(name, func(t *testing.T) {
			res := runSerial(t, name, []int{16, 16, 16}, 4, 15)
			if math.IsNaN(res.Norm) || math.IsInf(res.Norm, 0) || res.Norm == 0 {
				t.Fatalf("%s norm = %v", name, res.Norm)
			}
		})
	}
}

// runDMP executes a model distributed over the topology and returns the
// final checksum plus receiver traces from rank 0.
func runDMP(t *testing.T, name string, shape, topo []int, mode halo.Mode, so, nt int) (float64, [][]float64) {
	t.Helper()
	nranks := 1
	for _, v := range topo {
		nranks *= v
	}
	w := mpi.NewWorld(nranks)
	var norm float64
	var traces [][]float64
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), topo)
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := serialCfg(shape, so)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build(name, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		res, err := Run(m, ctx, RunConfig{NT: nt, NReceivers: 4})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			norm = res.Norm
			traces = res.Receivers
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return norm, traces
}

func TestDMPEquivalence_AllModelsAllModes(t *testing.T) {
	// The flagship correctness result: for every model and every
	// communication pattern, the distributed run reproduces the serial
	// checksum and receiver traces exactly (identical float32 operation
	// order per point).
	shape := []int{24, 24}
	so, nt := 4, 25
	for _, name := range ModelNames() {
		serial := runSerial(t, name, shape, so, nt)
		for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
			norm, traces := runDMP(t, name, shape, []int{2, 2}, mode, so, nt)
			if math.Abs(norm-serial.Norm) > 1e-9*math.Max(1, serial.Norm) {
				t.Errorf("%s/%s: norm %v != serial %v", name, mode, norm, serial.Norm)
			}
			for it := range traces {
				for ir2 := range traces[it] {
					d := math.Abs(traces[it][ir2] - serial.Receivers[it][ir2])
					if d > 1e-9*math.Max(1e-6, math.Abs(serial.Receivers[it][ir2])) {
						t.Errorf("%s/%s: trace (%d,%d) diverges: %v vs %v",
							name, mode, it, ir2, traces[it][ir2], serial.Receivers[it][ir2])
						break
					}
				}
			}
		}
	}
}

func TestDMPEquivalence_CustomTopologies(t *testing.T) {
	// Paper Fig. 2: custom decompositions must not change results.
	shape := []int{24, 24}
	serial := runSerial(t, "acoustic", shape, 4, 20)
	for _, topo := range [][]int{{4, 1}, {1, 4}, {2, 2}} {
		norm, _ := runDMP(t, "acoustic", shape, topo, halo.ModeDiagonal, 4, 20)
		if math.Abs(norm-serial.Norm) > 1e-9*math.Max(1, serial.Norm) {
			t.Errorf("topology %v: norm %v != serial %v", topo, norm, serial.Norm)
		}
	}
}

func TestDMPEquivalence_3DElastic(t *testing.T) {
	if testing.Short() {
		t.Skip("3-D DMP test skipped in -short")
	}
	shape := []int{16, 16, 16}
	serial := runSerial(t, "elastic", shape, 4, 10)
	norm, _ := runDMP(t, "elastic", shape, []int{2, 2, 1}, halo.ModeFull, 4, 10)
	if math.Abs(norm-serial.Norm) > 1e-9*math.Max(1, serial.Norm) {
		t.Errorf("3-D elastic full mode: %v != %v", norm, serial.Norm)
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build("bogus", serialCfg([]int{8, 8}, 2)); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestRunNeedsNTOrTime(t *testing.T) {
	m, _ := Acoustic(serialCfg([]int{16, 16}, 4))
	if _, err := Run(m, nil, RunConfig{}); err == nil {
		t.Error("missing NT and Time should fail")
	}
}

func TestRunTimeDerivesNT(t *testing.T) {
	m, _ := Acoustic(serialCfg([]int{16, 16}, 4))
	res, err := Run(m, nil, RunConfig{Time: 20 * m.CriticalDt})
	if err != nil {
		t.Fatal(err)
	}
	if res.NT < 20 || res.NT > 22 {
		t.Errorf("NT = %d, want ~21", res.NT)
	}
}

func TestDampFieldProfile(t *testing.T) {
	m, _ := Acoustic(serialCfg([]int{20, 20}, 2))
	damp := m.Fields["damp"]
	// Zero in the deep interior, positive at the faces.
	if damp.AtDomain(0, 10, 10) != 0 {
		t.Error("interior damping should be zero")
	}
	if damp.AtDomain(0, 0, 10) <= 0 {
		t.Error("boundary damping should be positive")
	}
	if damp.AtDomain(0, 0, 10) <= damp.AtDomain(0, 2, 10) {
		t.Error("damping should grow towards the face")
	}
}

func TestCriticalDtScalesWithSpacing(t *testing.T) {
	gCoarse := grid.MustNew([]int{16, 16}, []float64{30, 30})
	gFine := grid.MustNew([]int{16, 16}, []float64{15, 15})
	if criticalDt(gCoarse, 1.5) <= criticalDt(gFine, 1.5) {
		t.Error("coarser grids must allow larger dt")
	}
}
