package propagators

import (
	"fmt"
	"math"

	"devigo/internal/core"
	"devigo/internal/field"
	"devigo/internal/sparse"
	"devigo/internal/symbolic"
)

// This file implements the adjoint (time-reversed) companion of a forward
// propagator — the operator A' of the FWI/RTM workload class. Writing the
// forward acoustic update as
//
//	D1 u[t+1] = (D2 + L) u[t] - D3 u[t-1] + s,
//	D1 = m/dt^2 + damp/(2dt),  D2 = 2m/dt^2,  D3 = m/dt^2 - damp/(2dt),
//
// the exact discrete transpose of the full time-stepping map is obtained
// by solving the same PDE with the sign of the damping term flipped for
// the *backward* stencil v[t-1] and running the time loop in reverse:
//
//	D1 v[t-1] = (D2 + L) v[t] - D3 v[t+1] + r,
//
// (substitute v = D1^-1 w in the transposed recursion to see the
// coefficient roles swap back). Receiver data is injected as the adjoint
// source r with the same dt^2/m scaling as the forward source, and the
// adjoint wavefield is read back at the source position — so for sources
// and receivers placed in the damp-free interior the pair satisfies the
// discrete dot-product identity <Fq, d> = <q, F'd> exactly (up to
// floating-point rounding of the wavefield stores).

// Adjoint builds the time-reversed companion model of a forward model:
// the same physics solved for the backward stencil on a fresh adjoint
// wavefield, sharing the forward model's grid and parameter fields.
// Implemented for the acoustic propagator (the paper's FWI workload);
// the first-order staggered systems would need side-flipped staggered
// stencils and remain future work.
func Adjoint(fwd *Model) (*Model, error) {
	switch fwd.Name {
	case "acoustic":
		return acousticAdjoint(fwd)
	}
	return nil, fmt.Errorf("propagators: no adjoint for model %q (only acoustic)", fwd.Name)
}

// acousticAdjoint solves m*v.dt2 - laplace(v) - damp*v.dt = 0 for
// v.backward — the damping sign flip that makes the reversed recursion
// the exact transpose of the forward one.
func acousticAdjoint(fwd *Model) (*Model, error) {
	c := fwd.Cfg
	g := fwd.Grid
	so := fwd.SpaceOrder
	v, err := field.NewTimeFunction("v", g, so, 2, fieldCfg(&c, nil))
	if err != nil {
		return nil, err
	}
	mField, ok := fwd.Fields["m"]
	if !ok {
		return nil, fmt.Errorf("propagators: forward model lacks the m field")
	}
	damp, ok := fwd.Fields["damp"]
	if !ok {
		return nil, fmt.Errorf("propagators: forward model lacks the damp field")
	}
	nd := g.NDims()
	vt := symbolic.At(v.Ref)
	pde := symbolic.NewAdd(
		symbolic.NewMul(symbolic.At(mField.Ref), symbolic.Dt2(vt, 2)),
		symbolic.Neg(symbolic.Laplace(vt, nd, so)),
		symbolic.Neg(symbolic.NewMul(symbolic.At(damp.Ref), symbolic.Dt(vt, 2))),
	)
	sol, err := symbolic.Solve(symbolic.Eq{LHS: pde, RHS: symbolic.Int(0)}, symbolic.Backward(v.Ref))
	if err != nil {
		return nil, err
	}
	return &Model{
		Name:       "acoustic_adjoint",
		Grid:       g,
		SpaceOrder: so,
		Eqs: []symbolic.Eq{
			{LHS: symbolic.Backward(v.Ref), RHS: sol},
		},
		Fields: map[string]*field.Function{
			"v": &v.Function, "m": mField, "damp": damp,
		},
		WaveFields:       []string{"v"},
		SourceFields:     []string{"v"},
		CriticalDt:       fwd.CriticalDt,
		WorkingSetFields: 5,
		Cfg:              c,
	}, nil
}

// AdjointConfig drives a time-reversed run.
type AdjointConfig struct {
	// NT is the number of timesteps (must match the forward run whose
	// data is injected).
	NT int
	// DT is the timestep (0 keeps CriticalDt).
	DT float64
	// RecCoords are the adjoint-source positions — the receiver layout of
	// the forward run.
	RecCoords [][]float64
	// RecData is the injected time series, NT x len(RecCoords), in
	// forward-time order (the reversal happens inside the sweep).
	RecData [][]float64
	// SrcCoords is the read-back position (the forward source); nil uses
	// the domain centre.
	SrcCoords []float64
	// Workers / TileRows forward to the executor.
	Workers  int
	TileRows int
	// ForkJoin forces the legacy per-call goroutine dispatch instead of
	// the persistent worker pool (core.Options.ForkJoin).
	ForkJoin bool
	// TimeTile requests the halo-exchange interval k for the reverse
	// sweep; 0 consults DEVIGO_TIME_TILE.
	TimeTile int
	// Engine selects the execution engine ("" = core default).
	Engine string
	// Autotune selects the self-configuration policy forwarded to
	// core.ApplyOpts.Autotune ("" consults DEVIGO_AUTOTUNE).
	Autotune string
}

// AdjointResult carries the outputs of a time-reversed run.
type AdjointResult struct {
	NT int
	DT float64
	// SrcTraces is F'(d) sampled at SrcCoords, in forward-time order:
	// SrcTraces[t] pairs with the forward wavelet sample q[t] in the
	// dot-product identity.
	SrcTraces []float64
	// Norm is the L2 norm of the adjoint wavefield's final state (time
	// buffer 0), all-reduced under DMP.
	Norm float64
	// Perf reports the adjoint operator's section timings.
	Perf core.Perf
	// Op exposes the compiled adjoint operator.
	Op *core.Operator
}

// RunAdjoint compiles the adjoint companion of a forward model and runs
// it backwards in time: the reverse loop writes v[t-1] for t = NT..1,
// injecting RecData[t-1] into the freshly written buffer and sampling
// the source position — the exact transpose of the forward source/record
// schedule. ctx may be nil (serial) or carry one rank of an MPI world.
func RunAdjoint(fwd *Model, ctx *core.Context, ac AdjointConfig) (*AdjointResult, error) {
	adj, err := Adjoint(fwd)
	if err != nil {
		return nil, err
	}
	dt := adj.CriticalDt
	if ac.DT > 0 {
		dt = ac.DT
	}
	nt := ac.NT
	if nt <= 0 {
		return nil, fmt.Errorf("propagators: AdjointConfig needs NT")
	}
	if len(ac.RecCoords) == 0 {
		return nil, fmt.Errorf("propagators: AdjointConfig needs RecCoords")
	}
	if len(ac.RecData) != nt {
		return nil, fmt.Errorf("propagators: RecData has %d steps, want NT=%d", len(ac.RecData), nt)
	}
	for t, row := range ac.RecData {
		if len(row) != len(ac.RecCoords) {
			return nil, fmt.Errorf("propagators: RecData step %d has %d traces for %d receivers",
				t, len(row), len(ac.RecCoords))
		}
	}
	op, err := core.NewOperator(adj.Eqs, adj.Fields, adj.Grid, ctx,
		&core.Options{Name: adj.Name, Workers: ac.Workers, TileRows: ac.TileRows,
			ForkJoin: ac.ForkJoin, TimeTile: ac.TimeTile, Engine: ac.Engine})
	if err != nil {
		return nil, err
	}
	rec, err := sparse.New("rec", adj.Grid, ac.RecCoords)
	if err != nil {
		return nil, err
	}
	srcCoords := ac.SrcCoords
	if srcCoords == nil {
		srcCoords = CenterSource(adj.Grid)
	}
	src, err := sparse.New("src", adj.Grid, [][]float64{srcCoords})
	if err != nil {
		return nil, err
	}
	scale := injectionScale(adj, dt)
	v := adj.Fields["v"]

	res := &AdjointResult{NT: nt, DT: dt, Op: op, SrcTraces: make([]float64, nt)}
	vals := make([]float32, len(ac.RecCoords))
	postStep := func(t int) {
		// The reverse iteration t wrote buffer t-1 (= the adjoint state
		// w[t-1]); inject the matching receiver sample — mirrored into the
		// ghost shell under time tiling — and read back.
		for r, d := range ac.RecData[t-1] {
			vals[r] = float32(d) * scale
		}
		_ = rec.InjectDeep(v, t-1, vals, op.InjectDepth())
		res.SrcTraces[t-1] = src.Interpolate(v, t-1, commOf(ctx))[0]
	}
	if err := op.Apply(&core.ApplyOpts{
		TimeM:    1,
		TimeN:    nt,
		Reverse:  true,
		Syms:     map[string]float64{"dt": dt},
		PostStep: postStep,
		Autotune: ac.Autotune,
	}); err != nil {
		return nil, err
	}
	res.Perf = op.Report()
	res.Norm = fieldNorm(adj, ctx, 0)
	return res, nil
}

// DotTestResult reports one adjointness certification: the two sides of
// <Fq, d> = <q, F'd> and their relative gap.
type DotTestResult struct {
	NT          int
	DotForward  float64 // <Fq, Fq> — the forward side with d = Fq
	DotAdjoint  float64 // <q, F'Fq>
	RelErr      float64
	ForwardNorm float64
	AdjointNorm float64
}

// RelDot returns |a-b| / max(|a|, |b|, tiny).
func RelDot(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den < 1e-300 {
		den = 1e-300
	}
	return math.Abs(a-b) / den
}

// RunDotTest runs the standard adjoint (dot-product) certification on the
// acoustic model: forward d = Fq, adjoint q' = F'd, then <d,d> must equal
// <q,q'>. The configuration is engineered so that every floating-point
// operation is exact in float32 storage — second-order stencil (integer
// Laplacian weights), dt = 1 with m = 2 (dyadic update coefficient 1/2,
// marginally stable), no absorbing layer, on-grid source/receivers and a
// dyadic wavelet — so any structural error in the adjoint (a wrong time
// offset, scale or stencil asymmetry) shows up as an O(1) relative gap
// while a correct transpose yields ~0, far below the 1e-8 gate that
// float32 rounding noise would otherwise drown.
func RunDotTest(ctx *core.Context, engine string) (*DotTestResult, error) {
	const nt = 8
	shape := []int{24, 24}
	cfg := Config{Shape: shape, SpaceOrder: 2, NBL: 0, Velocity: 1}
	if ctx != nil && ctx.Decomp != nil {
		cfg.Decomp = ctx.Decomp
		cfg.Rank = ctx.Comm.Rank()
	}
	m, err := Acoustic(cfg)
	if err != nil {
		return nil, err
	}
	// m = 2 keeps the update coefficient dt^2/m = 1/2 exactly dyadic and
	// the scheme marginally stable (|2 + lambda_L/2| <= 2 in 2-D).
	fillConst(m.Fields["m"], 2)

	wavelet := []float32{1, -2, 1}
	srcCoords := []float64{12, 12}
	recCoords := [][]float64{{6, 5}, {11, 9}, {15, 14}, {17, 16}}

	fres, err := Run(m, ctx, RunConfig{
		NT: nt, DT: 1,
		Wavelet:        wavelet,
		SourceCoords:   srcCoords,
		ReceiverCoords: recCoords,
		Engine:         engine,
	})
	if err != nil {
		return nil, err
	}
	ares, err := RunAdjoint(m, ctx, AdjointConfig{
		NT: nt, DT: 1,
		RecCoords: recCoords,
		RecData:   fres.Receivers,
		SrcCoords: srcCoords,
		Engine:    engine,
	})
	if err != nil {
		return nil, err
	}
	res := &DotTestResult{NT: nt, ForwardNorm: fres.Norm, AdjointNorm: ares.Norm}
	for t := 0; t < nt; t++ {
		for _, d := range fres.Receivers[t] {
			res.DotForward += d * d
		}
		var q float64
		if t < len(wavelet) {
			q = float64(wavelet[t])
		}
		res.DotAdjoint += q * ares.SrcTraces[t]
	}
	res.RelErr = RelDot(res.DotForward, res.DotAdjoint)
	return res, nil
}
