package propagators

import (
	"math"
	"testing"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
)

// The adjoint acceptance gate: the discrete dot-product identity
// <Fq, Fq> = <q, F'Fq> must hold to 1e-8 relative error for the acoustic
// model — serially and on 4 ranks under every halo mode, with both
// execution engines. RunDotTest's configuration makes every float op
// exact, so a correct adjoint yields an *exactly* zero gap and any
// structural error yields O(1); the gate therefore certifies the
// transpose itself rather than measuring float32 rounding noise.

const dotTol = 1e-8

func engines() []string {
	return []string{core.EngineBytecode, core.EngineInterpreter, core.EngineNative}
}

func TestAdjointDotProduct_Serial(t *testing.T) {
	for _, engine := range engines() {
		t.Run(engine, func(t *testing.T) {
			res, err := RunDotTest(nil, engine)
			if err != nil {
				t.Fatal(err)
			}
			if res.DotForward == 0 {
				t.Fatal("degenerate dot test: forward data is all zero")
			}
			if res.RelErr > dotTol {
				t.Errorf("dot-product identity violated: <Fq,Fq>=%v <q,F'Fq>=%v rel=%v",
					res.DotForward, res.DotAdjoint, res.RelErr)
			}
		})
	}
}

func TestAdjointDotProduct_DMPAllModes(t *testing.T) {
	// The serial result is the cross-check baseline: the certification
	// config is arithmetically exact, so every mode/engine/ranking must
	// reproduce the identical dot products bit for bit.
	base, err := RunDotTest(nil, core.EngineBytecode)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range engines() {
		for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
			t.Run(engine+"/"+mode.String(), func(t *testing.T) {
				w := mpi.NewWorld(4)
				err := w.Run(func(c *mpi.Comm) {
					g := grid.MustNew([]int{24, 24}, nil)
					dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
					if err != nil {
						t.Error(err)
						return
					}
					cart, err := mpi.CartCreate(c, dec.Topology, nil)
					if err != nil {
						t.Error(err)
						return
					}
					ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
					res, err := RunDotTest(ctx, engine)
					if err != nil {
						t.Error(err)
						return
					}
					if res.RelErr > dotTol {
						t.Errorf("rank %d: identity violated: %v vs %v (rel %v)",
							c.Rank(), res.DotForward, res.DotAdjoint, res.RelErr)
					}
					if res.DotForward != base.DotForward || res.DotAdjoint != base.DotAdjoint {
						t.Errorf("rank %d: dots diverge from serial: (%v,%v) vs (%v,%v)",
							c.Rank(), res.DotForward, res.DotAdjoint, base.DotForward, base.DotAdjoint)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAdjointDotProduct_Realistic runs the identity in a production-like
// configuration — Ricker wavelet, absorbing boundary, 8th-order stencil,
// off-grid receivers — where float32 wavefield stores bound the
// achievable agreement. The tolerance reflects the dtype, not the
// operator: the certification config above is the tight gate.
func TestAdjointDotProduct_Realistic(t *testing.T) {
	for _, engine := range engines() {
		t.Run(engine, func(t *testing.T) {
			m, err := Acoustic(Config{Shape: []int{40, 40}, SpaceOrder: 8, NBL: 8, Velocity: 1.5})
			if err != nil {
				t.Fatal(err)
			}
			nt := 40
			rec := ReceiverLine(m.Grid, 6)
			fres, err := Run(m, nil, RunConfig{NT: nt, ReceiverCoords: rec, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			ares, err := RunAdjoint(m, nil, AdjointConfig{
				NT: nt, RecCoords: rec, RecData: fres.Receivers, Engine: engine,
			})
			if err != nil {
				t.Fatal(err)
			}
			var dotF, dotA float64
			wav := rickerFor(m, nt)
			for tt := 0; tt < nt; tt++ {
				for _, d := range fres.Receivers[tt] {
					dotF += d * d
				}
				dotA += float64(wav[tt]) * ares.SrcTraces[tt]
			}
			rel := RelDot(dotF, dotA)
			if rel > 2e-5 {
				t.Errorf("realistic dot test: %v vs %v (rel %v)", dotF, dotA, rel)
			}
			t.Logf("realistic config: <d,d>=%.6e <q,q'>=%.6e rel=%.2e", dotF, dotA, rel)
		})
	}
}

// rickerFor regenerates the default wavelet Run derives internally.
func rickerFor(m *Model, nt int) []float32 {
	rc := RunConfig{}
	s, err := buildSources(m, &rc, m.CriticalDt, nt)
	if err != nil {
		panic(err)
	}
	return s.wavelet
}

func exactGradientConfig(interval int) GradientConfig {
	return GradientConfig{
		NT: 8, DT: 1,
		Wavelet:            []float32{1, -2, 1},
		SourceCoords:       []float64{12, 12},
		ReceiverCoords:     [][]float64{{6, 5}, {11, 9}, {15, 14}, {17, 16}},
		CheckpointInterval: interval,
	}
}

func exactAcoustic(t *testing.T, dec *grid.Decomposition, rank int) *Model {
	t.Helper()
	cfg := Config{Shape: []int{24, 24}, SpaceOrder: 2, NBL: 0, Velocity: 1, Decomp: dec, Rank: rank}
	m, err := Acoustic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillConst(m.Fields["m"], 2)
	return m
}

// TestGradientCheckpointInvariance is the checkpointing subsystem's
// acceptance gate: because snapshots capture raw buffers and segment
// recomputation replays the identical operator and injection schedule,
// the gradient must be bit-identical for every checkpoint interval —
// including one so large that nothing is recomputed segment-wise.
func TestGradientCheckpointInvariance(t *testing.T) {
	grads := map[int][]float32{}
	stats := map[int]int{}
	for _, k := range []int{2, 3, 5, 100} {
		m := exactAcoustic(t, nil, 0)
		res, err := RunGradient(m, nil, exactGradientConfig(k))
		if err != nil {
			t.Fatal(err)
		}
		if res.RelErr > dotTol {
			t.Errorf("interval %d: dot identity violated: rel %v", k, res.RelErr)
		}
		if res.GradNorm == 0 {
			t.Errorf("interval %d: zero gradient", k)
		}
		grads[k] = append([]float32(nil), res.Gradient.Bufs[0].Data...)
		stats[k] = res.Checkpoint.RecomputedSteps
		wantSnaps := 8/k + 1
		if res.Checkpoint.Snapshots != wantSnaps {
			t.Errorf("interval %d: %d snapshots, want %d", k, res.Checkpoint.Snapshots, wantSnaps)
		}
	}
	ref := grads[2]
	for _, k := range []int{3, 5, 100} {
		g := grads[k]
		for i := range ref {
			if g[i] != ref[i] {
				t.Fatalf("gradient diverges between intervals 2 and %d at %d: %v vs %v",
					k, i, ref[i], g[i])
			}
		}
	}
	// Coarser intervals must not recompute more than nt steps total and
	// finer ones not fewer than nt - k.
	for k, rec := range stats {
		if rec > 8 {
			t.Errorf("interval %d recomputed %d steps (> nt)", k, rec)
		}
	}
}

// TestGradientEveryIntervalAlignment sweeps every interval against step
// counts around the segment boundaries — in particular nt % k == 1,
// where the last reverse step needs a forward level one past the final
// segment's re-integration window (a regression: the snapshot lookup
// must be based on the top of the needed range, not the bottom).
func TestGradientEveryIntervalAlignment(t *testing.T) {
	for _, nt := range []int{7, 8, 9} {
		gc := exactGradientConfig(1)
		gc.NT = nt
		base, err := RunGradient(exactAcoustic(t, nil, 0), nil, gc)
		if err != nil {
			t.Fatalf("nt=%d k=1: %v", nt, err)
		}
		for k := 2; k <= nt+1; k++ {
			gc := exactGradientConfig(k)
			gc.NT = nt
			res, err := RunGradient(exactAcoustic(t, nil, 0), nil, gc)
			if err != nil {
				t.Fatalf("nt=%d k=%d: %v", nt, k, err)
			}
			if res.GradNorm != base.GradNorm {
				t.Errorf("nt=%d k=%d: gradient norm %v != interval-1 norm %v",
					nt, k, res.GradNorm, base.GradNorm)
			}
		}
	}
}

// TestGradientDMP runs the full checkpointed gradient on 4 ranks with
// worker-pool parallelism and compares against the serial result.
func TestGradientDMP(t *testing.T) {
	serial, err := RunGradient(exactAcoustic(t, nil, 0), nil, exactGradientConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
		t.Run(mode.String(), func(t *testing.T) {
			w := mpi.NewWorld(4)
			err := w.Run(func(c *mpi.Comm) {
				g := grid.MustNew([]int{24, 24}, nil)
				dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
				if err != nil {
					t.Error(err)
					return
				}
				cart, err := mpi.CartCreate(c, dec.Topology, nil)
				if err != nil {
					t.Error(err)
					return
				}
				ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
				m := exactAcoustic(t, dec, c.Rank())
				gc := exactGradientConfig(3)
				gc.Workers = 2
				gc.TileRows = 3
				res, err := RunGradient(m, ctx, gc)
				if err != nil {
					t.Error(err)
					return
				}
				if res.RelErr > dotTol {
					t.Errorf("rank %d: dot identity violated: rel %v", c.Rank(), res.RelErr)
				}
				if res.DotForward != serial.DotForward || res.DotAdjoint != serial.DotAdjoint {
					t.Errorf("rank %d: dots diverge from serial", c.Rank())
				}
				// The imaging kernel computes identical per-point float32
				// values on any decomposition; only the float64 norm
				// reduction order differs.
				if math.Abs(res.GradNorm-serial.GradNorm) > 1e-12*serial.GradNorm {
					t.Errorf("rank %d: gradient norm %v != serial %v", c.Rank(), res.GradNorm, serial.GradNorm)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGradientResidualSource checks the FWI residual path: observed data
// equal to the synthetics yields a zero adjoint source and hence a zero
// gradient.
func TestGradientResidualSource(t *testing.T) {
	m := exactAcoustic(t, nil, 0)
	fres, err := Run(m, nil, RunConfig{
		NT: 8, DT: 1, Wavelet: []float32{1, -2, 1},
		SourceCoords:   []float64{12, 12},
		ReceiverCoords: [][]float64{{6, 5}, {11, 9}, {15, 14}, {17, 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m2 := exactAcoustic(t, nil, 0)
	gc := exactGradientConfig(3)
	gc.ObsData = fres.Receivers
	res, err := RunGradient(m2, nil, gc)
	if err != nil {
		t.Fatal(err)
	}
	if res.GradNorm != 0 {
		t.Errorf("zero residual must give a zero gradient, got norm %v", res.GradNorm)
	}
}

func TestAdjointModelStructure(t *testing.T) {
	m := exactAcoustic(t, nil, 0)
	adj, err := Adjoint(m)
	if err != nil {
		t.Fatal(err)
	}
	if adj.Name != "acoustic_adjoint" {
		t.Errorf("name %q", adj.Name)
	}
	// Parameter fields are shared storage, the wavefield is fresh.
	if adj.Fields["m"] != m.Fields["m"] || adj.Fields["damp"] != m.Fields["damp"] {
		t.Error("adjoint must share the forward parameter fields")
	}
	if adj.Fields["v"] == nil || adj.Fields["v"] == m.Fields["u"] {
		t.Error("adjoint wavefield must be fresh storage")
	}
	lhs := adj.Eqs[0].LHS.String()
	if lhs != "v[t-1,x,y]" {
		t.Errorf("adjoint update target %q, want the backward stencil", lhs)
	}
	el, err := Elastic(Config{Shape: []int{16, 16}, SpaceOrder: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Adjoint(el); err == nil {
		t.Error("elastic adjoint should report unsupported")
	}
}

func TestRunAdjointValidation(t *testing.T) {
	m := exactAcoustic(t, nil, 0)
	rec := [][]float64{{6, 5}}
	if _, err := RunAdjoint(m, nil, AdjointConfig{RecCoords: rec}); err == nil {
		t.Error("missing NT should error")
	}
	if _, err := RunAdjoint(m, nil, AdjointConfig{NT: 4}); err == nil {
		t.Error("missing RecCoords should error")
	}
	if _, err := RunAdjoint(m, nil, AdjointConfig{NT: 4, RecCoords: rec, RecData: make([][]float64, 3)}); err == nil {
		t.Error("mismatched RecData length should error")
	}
}
