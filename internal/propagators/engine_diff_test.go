package propagators

import (
	"testing"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
)

// The differential suite is the execution engines' acceptance gate: for
// every propagator, every engine must produce *bit-identical* wavefields
// to the bytecode register VM — serially and on every rank of a
// distributed run under each halo-exchange mode and exchange interval.
// Equality is exact (==), not tolerance-based: all engines are required
// to emit the same float64 operation sequence per point. The interpreter
// is the reference implementation; the native engine is the fused
// bulk-row re-lowering of the bytecode program.

// altEngines are the engines checked pointwise against the bytecode
// baseline.
var altEngines = []string{core.EngineInterpreter, core.EngineNative}

// runEngineSerial executes nt steps of a freshly built model with the
// given engine and returns the model (for field inspection) and result.
func runEngineSerial(t *testing.T, name, engine string, shape []int, so, nt int) (*Model, *RunResult) {
	t.Helper()
	m, err := Build(name, serialCfg(shape, so))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, nil, RunConfig{NT: nt, NReceivers: 4, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// compareModels asserts bitwise equality of every buffer of every field.
func compareModels(t *testing.T, label, engine string, a, b *Model) {
	t.Helper()
	for name, fa := range a.Fields {
		fb := b.Fields[name]
		for bi := range fa.Bufs {
			da, db := fa.Bufs[bi].Data, fb.Bufs[bi].Data
			for i := range da {
				if da[i] != db[i] && (da[i] == da[i] || db[i] == db[i]) { // NaN==NaN passes
					t.Fatalf("%s: field %s buf %d diverges at %d: bytecode=%v %s=%v",
						label, name, bi, i, da[i], engine, db[i])
				}
			}
		}
	}
}

func TestEngineDifferential_SerialAllModels(t *testing.T) {
	shape := []int{24, 24}
	for _, name := range ModelNames() {
		t.Run(name, func(t *testing.T) {
			mB, resB := runEngineSerial(t, name, core.EngineBytecode, shape, 4, 30)
			if resB.Perf.Engine != core.EngineBytecode {
				t.Fatalf("engine label wrong: %q", resB.Perf.Engine)
			}
			for _, engine := range altEngines {
				mX, resX := runEngineSerial(t, name, engine, shape, 4, 30)
				if resX.Perf.Engine != engine {
					t.Fatalf("engine label wrong: %q (wanted %q)", resX.Perf.Engine, engine)
				}
				if resB.Norm != resX.Norm {
					t.Errorf("%s: norms diverge: bytecode %v, %s %v", name, resB.Norm, engine, resX.Norm)
				}
				for it := range resB.Receivers {
					for r := range resB.Receivers[it] {
						if resB.Receivers[it][r] != resX.Receivers[it][r] {
							t.Fatalf("%s: trace (%d,%d) diverges vs %s", name, it, r, engine)
						}
					}
				}
				compareModels(t, name, engine, mB, mX)
			}
		})
	}
}

func TestEngineDifferential_Serial3D(t *testing.T) {
	if testing.Short() {
		t.Skip("3-D differential skipped in -short")
	}
	for _, name := range []string{"acoustic", "elastic", "tti"} {
		t.Run(name, func(t *testing.T) {
			mB, resB := runEngineSerial(t, name, core.EngineBytecode, []int{14, 14, 14}, 4, 10)
			for _, engine := range altEngines {
				mX, resX := runEngineSerial(t, name, engine, []int{14, 14, 14}, 4, 10)
				if resB.Norm != resX.Norm {
					t.Errorf("%s 3-D: norms diverge: bytecode %v, %s %v", name, resB.Norm, engine, resX.Norm)
				}
				compareModels(t, name, engine, mB, mX)
			}
		})
	}
}

// runEngineDMP runs a model over a 2x2 decomposition with halo-exchange
// interval k and returns the rank-0 norm and receiver traces.
func runEngineDMP(t *testing.T, name, engine string, shape []int, mode halo.Mode, so, nt, k int) (float64, [][]float64) {
	t.Helper()
	w := mpi.NewWorld(4)
	var norm float64
	var traces [][]float64
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := serialCfg(shape, so)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build(name, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		res, err := Run(m, ctx, RunConfig{NT: nt, NReceivers: 4, Engine: engine,
			Workers: 2, TileRows: 3, TimeTile: k})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			norm = res.Norm
			traces = res.Receivers
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return norm, traces
}

func TestEngineDifferential_DMPAllModelsAllModes(t *testing.T) {
	shape := []int{24, 24}
	so, nt := 4, 20
	for _, name := range ModelNames() {
		for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
			for _, k := range []int{1, 4} {
				// The interpreter's k coverage rides on k=1; the native
				// engine is checked at both exchange intervals.
				engines := []string{core.EngineNative}
				if k == 1 {
					engines = altEngines
				}
				t.Run(name+"/"+mode.String()+"/k"+string(rune('0'+k)), func(t *testing.T) {
					normB, tracesB := runEngineDMP(t, name, core.EngineBytecode, shape, mode, so, nt, k)
					for _, engine := range engines {
						normX, tracesX := runEngineDMP(t, name, engine, shape, mode, so, nt, k)
						if normB != normX {
							t.Errorf("%s/%s/k=%d: 4-rank norms diverge: bytecode %v, %s %v",
								name, mode, k, normB, engine, normX)
						}
						for it := range tracesB {
							for r := range tracesB[it] {
								if tracesB[it][r] != tracesX[it][r] {
									t.Fatalf("%s/%s/k=%d: trace (%d,%d) diverges: %v vs %s %v",
										name, mode, k, it, r, tracesB[it][r], engine, tracesX[it][r])
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestEngineDifferential_BytecodeFaster is a coarse perf regression guard
// (the precise numbers live in cmd/devigo-bench): on the acoustic kernel
// the register VM must not be slower than the tree-walking interpreter.
func TestEngineDifferential_BytecodeFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("perf guard skipped in -short")
	}
	shape := []int{96, 96}
	_, resB := runEngineSerial(t, "acoustic", core.EngineBytecode, shape, 8, 40)
	_, resI := runEngineSerial(t, "acoustic", core.EngineInterpreter, shape, 8, 40)
	gB, gI := resB.Perf.GPtss(), resI.Perf.GPtss()
	if gB <= 0 || gI <= 0 {
		t.Fatalf("throughputs missing: bytecode %v, interpreter %v", gB, gI)
	}
	if gB < gI {
		t.Errorf("bytecode engine slower than interpreter: %.3f vs %.3f GPts/s", gB, gI)
	}
	t.Logf("acoustic 96x96 so-8: bytecode %.3f GPts/s, interpreter %.3f GPts/s (%.2fx)",
		gB, gI, gB/gI)
}

// TestEngineDifferential_NativeFaster guards the native engine's reason to
// exist: fused bulk-row chains must beat the per-instruction register VM
// on the acoustic kernel (the precise ≥3x gate lives in devigo-bench).
func TestEngineDifferential_NativeFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("perf guard skipped in -short")
	}
	shape := []int{96, 96}
	_, resB := runEngineSerial(t, "acoustic", core.EngineBytecode, shape, 8, 40)
	_, resN := runEngineSerial(t, "acoustic", core.EngineNative, shape, 8, 40)
	gB, gN := resB.Perf.GPtss(), resN.Perf.GPtss()
	if gB <= 0 || gN <= 0 {
		t.Fatalf("throughputs missing: bytecode %v, native %v", gB, gN)
	}
	if gN < gB {
		t.Errorf("native engine slower than bytecode: %.3f vs %.3f GPts/s", gN, gB)
	}
	t.Logf("acoustic 96x96 so-8: native %.3f GPts/s, bytecode %.3f GPts/s (%.2fx)",
		gN, gB, gN/gB)
}
