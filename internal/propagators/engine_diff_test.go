package propagators

import (
	"testing"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
)

// The differential suite is the bytecode engine's acceptance gate: for
// every propagator, the register-VM kernels must produce *bit-identical*
// wavefields to the expression-tree interpreter — serially and on every
// rank of a distributed run under each halo-exchange mode. Equality is
// exact (==), not tolerance-based: both engines are required to emit the
// same float64 operation sequence per point.

// runEngineSerial executes nt steps of a freshly built model with the
// given engine and returns the model (for field inspection) and result.
func runEngineSerial(t *testing.T, name, engine string, shape []int, so, nt int) (*Model, *RunResult) {
	t.Helper()
	m, err := Build(name, serialCfg(shape, so))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, nil, RunConfig{NT: nt, NReceivers: 4, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// compareModels asserts bitwise equality of every buffer of every field.
func compareModels(t *testing.T, label string, a, b *Model) {
	t.Helper()
	for name, fa := range a.Fields {
		fb := b.Fields[name]
		for bi := range fa.Bufs {
			da, db := fa.Bufs[bi].Data, fb.Bufs[bi].Data
			for i := range da {
				if da[i] != db[i] && (da[i] == da[i] || db[i] == db[i]) { // NaN==NaN passes
					t.Fatalf("%s: field %s buf %d diverges at %d: bytecode=%v interpreter=%v",
						label, name, bi, i, da[i], db[i])
				}
			}
		}
	}
}

func TestEngineDifferential_SerialAllModels(t *testing.T) {
	shape := []int{24, 24}
	for _, name := range ModelNames() {
		t.Run(name, func(t *testing.T) {
			mB, resB := runEngineSerial(t, name, core.EngineBytecode, shape, 4, 30)
			mI, resI := runEngineSerial(t, name, core.EngineInterpreter, shape, 4, 30)
			if resB.Perf.Engine != core.EngineBytecode || resI.Perf.Engine != core.EngineInterpreter {
				t.Fatalf("engine labels wrong: %q vs %q", resB.Perf.Engine, resI.Perf.Engine)
			}
			if resB.Norm != resI.Norm {
				t.Errorf("%s: norms diverge: bytecode %v, interpreter %v", name, resB.Norm, resI.Norm)
			}
			for it := range resB.Receivers {
				for r := range resB.Receivers[it] {
					if resB.Receivers[it][r] != resI.Receivers[it][r] {
						t.Fatalf("%s: trace (%d,%d) diverges", name, it, r)
					}
				}
			}
			compareModels(t, name, mB, mI)
		})
	}
}

func TestEngineDifferential_Serial3D(t *testing.T) {
	if testing.Short() {
		t.Skip("3-D differential skipped in -short")
	}
	for _, name := range []string{"acoustic", "elastic", "tti"} {
		t.Run(name, func(t *testing.T) {
			mB, resB := runEngineSerial(t, name, core.EngineBytecode, []int{14, 14, 14}, 4, 10)
			mI, resI := runEngineSerial(t, name, core.EngineInterpreter, []int{14, 14, 14}, 4, 10)
			if resB.Norm != resI.Norm {
				t.Errorf("%s 3-D: norms diverge: %v vs %v", name, resB.Norm, resI.Norm)
			}
			compareModels(t, name, mB, mI)
		})
	}
}

// runEngineDMP runs a model over a 2x2 decomposition and returns the
// rank-0 norm and receiver traces.
func runEngineDMP(t *testing.T, name, engine string, shape []int, mode halo.Mode, so, nt int) (float64, [][]float64) {
	t.Helper()
	w := mpi.NewWorld(4)
	var norm float64
	var traces [][]float64
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := serialCfg(shape, so)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build(name, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		res, err := Run(m, ctx, RunConfig{NT: nt, NReceivers: 4, Engine: engine, Workers: 2, TileRows: 3})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			norm = res.Norm
			traces = res.Receivers
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return norm, traces
}

func TestEngineDifferential_DMPAllModelsAllModes(t *testing.T) {
	shape := []int{24, 24}
	so, nt := 4, 20
	for _, name := range []string{"acoustic", "elastic", "tti"} {
		for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				normB, tracesB := runEngineDMP(t, name, core.EngineBytecode, shape, mode, so, nt)
				normI, tracesI := runEngineDMP(t, name, core.EngineInterpreter, shape, mode, so, nt)
				if normB != normI {
					t.Errorf("%s/%s: 4-rank norms diverge: bytecode %v, interpreter %v",
						name, mode, normB, normI)
				}
				for it := range tracesB {
					for r := range tracesB[it] {
						if tracesB[it][r] != tracesI[it][r] {
							t.Fatalf("%s/%s: trace (%d,%d) diverges: %v vs %v",
								name, mode, it, r, tracesB[it][r], tracesI[it][r])
						}
					}
				}
			})
		}
	}
}

// TestEngineDifferential_BytecodeFaster is a coarse perf regression guard
// (the precise numbers live in cmd/devigo-bench): on the acoustic kernel
// the register VM must not be slower than the tree-walking interpreter.
func TestEngineDifferential_BytecodeFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("perf guard skipped in -short")
	}
	shape := []int{96, 96}
	_, resB := runEngineSerial(t, "acoustic", core.EngineBytecode, shape, 8, 40)
	_, resI := runEngineSerial(t, "acoustic", core.EngineInterpreter, shape, 8, 40)
	gB, gI := resB.Perf.GPtss(), resI.Perf.GPtss()
	if gB <= 0 || gI <= 0 {
		t.Fatalf("throughputs missing: bytecode %v, interpreter %v", gB, gI)
	}
	if gB < gI {
		t.Errorf("bytecode engine slower than interpreter: %.3f vs %.3f GPts/s", gB, gI)
	}
	t.Logf("acoustic 96x96 so-8: bytecode %.3f GPts/s, interpreter %.3f GPts/s (%.2fx)",
		gB, gI, gB/gI)
}
