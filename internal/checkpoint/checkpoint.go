// Package checkpoint implements bounded-memory wavefield storage for
// time-reversed (adjoint/gradient) runs. Storing every timestep of a
// forward wavefield costs O(nt) grid copies — prohibitive for realistic
// step counts — so the store keeps full snapshots only every Interval
// steps and the reverse sweep recomputes the forward field segment by
// segment between them. Memory is bounded by
//
//	nt/Interval snapshots + (Interval+2) cached time levels
//
// at the price of one extra forward integration of each segment; the
// classic sqrt(nt) interval balances the two terms. Snapshots capture the
// raw buffers (halos included), so a recomputed segment is bit-identical
// to the original integration, serially and under any DMP halo mode.
package checkpoint

import (
	"fmt"
	"math"
	"sort"

	"devigo/internal/field"
	"devigo/internal/obs"
)

// Store snapshots a set of wavefields during a forward run and serves
// their time levels back to a reverse sweep.
type Store struct {
	// Interval is the snapshot spacing in timesteps.
	Interval int
	// Rank identifies the owning rank in obs traces/metrics (0 when
	// serial; the gradient driver sets it under DMP).
	Rank int

	fields []*field.Function
	// snaps maps a logical step s to a full copy of every buffer of every
	// field, in the state "ready to execute step s" (i.e. taken after step
	// s-1 completed, injections included).
	snaps map[int][][][]float32
	// levels maps a logical time level t to a copy of each field's cyclic
	// buffer Buf(t) — the recompute cache of the segment currently being
	// consumed by the reverse sweep.
	levels map[int][][]float32

	// Stats accumulates the cost counters reported by benchmarks.
	Stats Stats
}

// Stats counts the memory/recompute cost of a checkpointed run.
type Stats struct {
	// Snapshots is the number of full-state snapshots taken.
	Snapshots int
	// SnapshotBytes is the total snapshot storage in bytes.
	SnapshotBytes int64
	// RecomputedSteps counts forward steps re-integrated during the
	// reverse sweep (incremented by the driver).
	RecomputedSteps int
}

// DefaultInterval is the sqrt(nt) heuristic: it balances snapshot memory
// against recompute work.
func DefaultInterval(nt int) int {
	k := int(math.Ceil(math.Sqrt(float64(nt))))
	if k < 1 {
		k = 1
	}
	return k
}

// New creates a store snapshotting the given fields every interval steps.
// interval <= 0 panics; use DefaultInterval to derive one from the step
// count.
func New(interval int, fields ...*field.Function) *Store {
	if interval <= 0 {
		panic("checkpoint: interval must be positive")
	}
	return &Store{
		Interval: interval,
		fields:   fields,
		snaps:    map[int][][][]float32{},
		levels:   map[int][][]float32{},
	}
}

// SaveIfDue snapshots the state "ready to execute step t" when t falls on
// the interval. Call it with t=0 before the forward loop and with t+1
// from the loop's post-step hook.
func (s *Store) SaveIfDue(t int) {
	if t%s.Interval == 0 {
		s.Save(t)
	}
}

// Save unconditionally snapshots every buffer of every field under step
// key t. Saving the same step twice overwrites (idempotent for reruns).
func (s *Store) Save(t int) {
	sp := obs.Begin(s.Rank, obs.PhaseCkptSave, t)
	defer func() {
		sp.End()
		obs.Add(s.Rank, obs.CtrCkptSaves, 1)
	}()
	_, existed := s.snaps[t]
	snap := make([][][]float32, len(s.fields))
	for fi, f := range s.fields {
		snap[fi] = make([][]float32, len(f.Bufs))
		for bi, b := range f.Bufs {
			cp := make([]float32, len(b.Data))
			copy(cp, b.Data)
			snap[fi][bi] = cp
			if !existed {
				s.Stats.SnapshotBytes += int64(4 * len(b.Data))
			}
		}
	}
	s.snaps[t] = snap
	if !existed {
		s.Stats.Snapshots++
	}
}

// Restore copies snapshot t back into the live field buffers.
func (s *Store) Restore(t int) error {
	snap, ok := s.snaps[t]
	if !ok {
		return fmt.Errorf("checkpoint: no snapshot at step %d", t)
	}
	sp := obs.Begin(s.Rank, obs.PhaseCkptRestore, t)
	for fi, f := range s.fields {
		for bi, b := range f.Bufs {
			copy(b.Data, snap[fi][bi])
		}
	}
	sp.End()
	obs.Add(s.Rank, obs.CtrCkptRestores, 1)
	return nil
}

// SnapshotAtOrBefore returns the greatest snapshotted step <= t.
func (s *Store) SnapshotAtOrBefore(t int) (int, error) {
	best, found := 0, false
	for st := range s.snaps {
		if st <= t && (!found || st > best) {
			best, found = st, true
		}
	}
	if !found {
		return 0, fmt.Errorf("checkpoint: no snapshot at or before step %d", t)
	}
	return best, nil
}

// SnapshotSteps returns the snapshotted steps in ascending order.
func (s *Store) SnapshotSteps() []int {
	out := make([]int, 0, len(s.snaps))
	for st := range s.snaps {
		out = append(out, st)
	}
	sort.Ints(out)
	return out
}

// RecordLevel caches a copy of each field's cyclic buffer for logical
// time level t — called while recomputing a segment forward.
func (s *Store) RecordLevel(t int) {
	lv := make([][]float32, len(s.fields))
	for fi, f := range s.fields {
		b := f.Buf(t)
		cp := make([]float32, len(b.Data))
		copy(cp, b.Data)
		lv[fi] = cp
	}
	s.levels[t] = lv
}

// HasLevel reports whether time level t is cached.
func (s *Store) HasLevel(t int) bool {
	_, ok := s.levels[t]
	return ok
}

// LoadLevel copies cached time level t back into each field's cyclic
// buffer Buf(t).
func (s *Store) LoadLevel(t int) error {
	lv, ok := s.levels[t]
	if !ok {
		return fmt.Errorf("checkpoint: time level %d not cached", t)
	}
	for fi, f := range s.fields {
		copy(f.Buf(t).Data, lv[fi])
	}
	return nil
}

// PruneLevels drops cached levels outside [lo, hi], bounding the cache to
// the segment the reverse sweep is consuming.
func (s *Store) PruneLevels(lo, hi int) {
	for t := range s.levels {
		if t < lo || t > hi {
			delete(s.levels, t)
		}
	}
}
