package checkpoint

import (
	"testing"

	"devigo/internal/field"
	"devigo/internal/grid"
)

func testField(t *testing.T) *field.TimeFunction {
	t.Helper()
	g, err := grid.New([]int{6, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := field.NewTimeFunction("u", g, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func fill(u *field.TimeFunction, t int, v float32) {
	for i := range u.Buf(t).Data {
		u.Buf(t).Data[i] = v + float32(i)
	}
}

func TestSaveRestoreRoundtrip(t *testing.T) {
	u := testField(t)
	s := New(4, &u.Function)
	fill(u, 0, 1)
	fill(u, 1, 100)
	fill(u, 2, 10000)
	s.Save(8)
	// Clobber and restore.
	for b := 0; b < 3; b++ {
		u.Bufs[b].Fill(-1)
	}
	if err := s.Restore(8); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 3; b++ {
		want := float32([3]float32{1, 100, 10000}[b])
		if got := u.Bufs[b].Data[0]; got != want {
			t.Fatalf("buf %d: got %v want %v", b, got, want)
		}
	}
	if s.Stats.Snapshots != 1 {
		t.Fatalf("snapshots = %d, want 1", s.Stats.Snapshots)
	}
	wantBytes := int64(3 * 4 * len(u.Bufs[0].Data))
	if s.Stats.SnapshotBytes != wantBytes {
		t.Fatalf("snapshot bytes = %d, want %d", s.Stats.SnapshotBytes, wantBytes)
	}
}

func TestSaveIsIdempotentInStats(t *testing.T) {
	u := testField(t)
	s := New(2, &u.Function)
	s.Save(0)
	s.Save(0)
	if s.Stats.Snapshots != 1 {
		t.Fatalf("re-saving a step must not double-count: %d", s.Stats.Snapshots)
	}
}

func TestSaveIfDueInterval(t *testing.T) {
	u := testField(t)
	s := New(3, &u.Function)
	for t := 0; t <= 10; t++ {
		s.SaveIfDue(t)
	}
	got := s.SnapshotSteps()
	want := []int{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("snapshot steps %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot steps %v, want %v", got, want)
		}
	}
}

func TestSnapshotAtOrBefore(t *testing.T) {
	u := testField(t)
	s := New(4, &u.Function)
	s.Save(0)
	s.Save(4)
	s.Save(8)
	for _, tc := range []struct{ q, want int }{{0, 0}, {3, 0}, {4, 4}, {7, 4}, {11, 8}} {
		got, err := s.SnapshotAtOrBefore(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("SnapshotAtOrBefore(%d) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if _, err := s.SnapshotAtOrBefore(-1); err == nil {
		t.Fatal("expected error below first snapshot")
	}
}

func TestLevelCacheCyclicAndPrune(t *testing.T) {
	u := testField(t)
	s := New(4, &u.Function)
	// Record levels 4..7; level t lives in cyclic buffer t%3.
	for lvl := 4; lvl <= 7; lvl++ {
		fill(u, lvl, float32(10*lvl))
		s.RecordLevel(lvl)
	}
	// Negative levels address the trailing cyclic buffer.
	fill(u, -1, -5)
	s.RecordLevel(-1)
	u.Buf(5).Fill(0)
	if err := s.LoadLevel(5); err != nil {
		t.Fatal(err)
	}
	if got := u.Buf(5).Data[0]; got != 50 {
		t.Fatalf("level 5 reload = %v, want 50", got)
	}
	if err := s.LoadLevel(-1); err != nil {
		t.Fatal(err)
	}
	if got := u.Buf(-1).Data[0]; got != -5 {
		t.Fatalf("level -1 reload = %v, want -5", got)
	}
	s.PruneLevels(6, 7)
	if s.HasLevel(5) || s.HasLevel(-1) {
		t.Fatal("pruned levels still cached")
	}
	if !s.HasLevel(6) || !s.HasLevel(7) {
		t.Fatal("kept levels lost")
	}
	if err := s.LoadLevel(5); err == nil {
		t.Fatal("expected error loading pruned level")
	}
}

func TestDefaultInterval(t *testing.T) {
	for _, tc := range []struct{ nt, want int }{{0, 1}, {1, 1}, {4, 2}, {10, 4}, {100, 10}, {101, 11}} {
		if got := DefaultInterval(tc.nt); got != tc.want {
			t.Fatalf("DefaultInterval(%d) = %d, want %d", tc.nt, got, tc.want)
		}
	}
}
