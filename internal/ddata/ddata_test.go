package ddata

import (
	"reflect"
	"testing"
	"testing/quick"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/mpi"
)

func mkArray(t *testing.T, c *mpi.Comm, shape []int, topo []int) *Array {
	t.Helper()
	g := grid.MustNew(shape, nil)
	d, err := grid.NewDecomposition(g, c.Size(), topo)
	if err != nil {
		t.Fatal(err)
	}
	f, err := field.NewFunction("u", g, 2, &field.Config{Decomp: d, Rank: c.Rank()})
	if err != nil {
		t.Fatal(err)
	}
	return New(f, d, c.Rank())
}

func TestListing2_DistributedSlice(t *testing.T) {
	// Paper Listing 2: u.data[1:-1, 1:-1] = 1 on a 4x4 grid over 4 ranks.
	want := map[int]string{
		0: "[[0.00 0.00]\n [0.00 1.00]]",
		1: "[[0.00 0.00]\n [1.00 0.00]]",
		2: "[[0.00 1.00]\n [0.00 0.00]]",
		3: "[[1.00 0.00]\n [0.00 0.00]]",
	}
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		a := mkArray(t, c, []int{4, 4}, []int{2, 2})
		if err := a.SetSlice(0, []Slice{SliceRange(1, -1), SliceRange(1, -1)}, 1); err != nil {
			t.Error(err)
			return
		}
		if got := a.LocalString(0); got != want[c.Rank()] {
			t.Errorf("rank %d local view:\n%s\nwant:\n%s", c.Rank(), got, want[c.Rank()])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSliceNormalisation(t *testing.T) {
	s := SliceRange(1, -1)
	lo, hi, err := s.normalize(4)
	if err != nil || lo != 1 || hi != 3 {
		t.Errorf("normalize = %d,%d,%v", lo, hi, err)
	}
	if _, _, err := SliceRange(3, 1).normalize(4); err == nil {
		t.Error("reversed slice should error")
	}
	if _, _, err := SliceRange(0, 9).normalize(4); err == nil {
		t.Error("overlong slice should error")
	}
	lo, hi, _ = SliceAll().normalize(7)
	if lo != 0 || hi != 7 {
		t.Error("SliceAll wrong")
	}
}

func TestSetSliceWrongRank(t *testing.T) {
	w := mpi.NewWorld(1)
	err := w.Run(func(c *mpi.Comm) {
		a := mkArray(t, c, []int{4, 4}, []int{1, 1})
		if err := a.SetSlice(0, []Slice{SliceAll()}, 1); err == nil {
			t.Error("dimension count mismatch should error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAtGlobalOwnership(t *testing.T) {
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		a := mkArray(t, c, []int{4, 4}, []int{2, 2})
		_ = a.SetFunc(0, []Slice{SliceAll(), SliceAll()}, func(g []int) float32 {
			return float32(g[0]*10 + g[1])
		})
		owned := 0
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if v, ok := a.At(0, []int{i, j}); ok {
					owned++
					if v != float32(i*10+j) {
						t.Errorf("rank %d: at(%d,%d) = %v", c.Rank(), i, j, v)
					}
				}
			}
		}
		if owned != 4 {
			t.Errorf("rank %d owns %d points, want 4", c.Rank(), owned)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherReassemblesGlobal(t *testing.T) {
	w := mpi.NewWorld(6)
	var got []float32
	err := w.Run(func(c *mpi.Comm) {
		a := mkArray(t, c, []int{6, 5}, []int{3, 2})
		_ = a.SetFunc(0, []Slice{SliceAll(), SliceAll()}, func(g []int) float32 {
			return float32(g[0]*100 + g[1])
		})
		out := a.Gather(c, 0, 0)
		if c.Rank() == 0 {
			got = out
		} else if out != nil {
			t.Errorf("rank %d should get nil from Gather", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float32, 30)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			want[i*5+j] = float32(i*100 + j)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("gather = %v\nwant %v", got, want)
	}
}

func TestGatherSerial(t *testing.T) {
	g := grid.MustNew([]int{3, 3}, nil)
	f, _ := field.NewFunction("u", g, 2, nil)
	a := New(f, nil, 0)
	_ = a.SetSlice(0, []Slice{SliceRange(0, 3), SliceRange(0, 3)}, 2)
	out := a.Gather(nil, 0, 0)
	if len(out) != 9 || out[4] != 2 {
		t.Errorf("serial gather = %v", out)
	}
}

func TestSliceWritesExactlyOnceAcrossRanks(t *testing.T) {
	// Property: for random slices, summing each rank's written cells over
	// a gather equals the slice volume (every cell written exactly once,
	// no rank double-writes).
	f := func(lo0, hi0, lo1, hi1 uint8) bool {
		l0, h0 := int(lo0%8), int(lo0%8)+int(hi0%(9-lo0%8))
		l1, h1 := int(lo1%8), int(lo1%8)+int(hi1%(9-lo1%8))
		w := mpi.NewWorld(4)
		var sum float64
		err := w.Run(func(c *mpi.Comm) {
			g := grid.MustNew([]int{8, 8}, nil)
			d, _ := grid.NewDecomposition(g, 4, []int{2, 2})
			fn, _ := field.NewFunction("u", g, 2, &field.Config{Decomp: d, Rank: c.Rank()})
			a := New(fn, d, c.Rank())
			_ = a.SetSlice(0, []Slice{SliceRange(l0, h0), SliceRange(l1, h1)}, 1)
			out := a.Gather(c, 0, 0)
			if c.Rank() == 0 {
				for _, v := range out {
					sum += float64(v)
				}
			}
		})
		if err != nil {
			return false
		}
		return sum == float64((h0-l0)*(h1-l1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSetFuncGlobalCoordinates(t *testing.T) {
	// Values must be a function of *global* coordinates regardless of the
	// decomposition used.
	for _, topo := range [][]int{{1, 4}, {4, 1}, {2, 2}} {
		w := mpi.NewWorld(4)
		var got []float32
		err := w.Run(func(c *mpi.Comm) {
			a := mkArray(t, c, []int{8, 8}, topo)
			_ = a.SetFunc(0, []Slice{SliceAll(), SliceAll()}, func(g []int) float32 {
				return float32(g[0] - g[1])
			})
			out := a.Gather(c, 0, 0)
			if c.Rank() == 0 {
				got = out
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if got[i*8+j] != float32(i-j) {
					t.Fatalf("topology %v: (%d,%d) = %v, want %d", topo, i, j, got[i*8+j], i-j)
				}
			}
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		a := mkArray(t, c, []int{6, 6}, []int{2, 2})
		var data []float32
		if c.Rank() == 0 {
			data = make([]float32, 36)
			for i := range data {
				data[i] = float32(i) * 1.5
			}
		}
		a.Scatter(c, 0, 0, data)
		out := a.Gather(c, 0, 0)
		if c.Rank() == 0 {
			if !reflect.DeepEqual(out, data) {
				t.Errorf("scatter/gather roundtrip failed:\n%v\n%v", out, data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterSerial(t *testing.T) {
	g := grid.MustNew([]int{3, 3}, nil)
	f, _ := field.NewFunction("u", g, 2, nil)
	a := New(f, nil, 0)
	data := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	a.Scatter(nil, 0, 0, data)
	if f.AtDomain(0, 1, 1) != 5 {
		t.Errorf("serial scatter centre = %v", f.AtDomain(0, 1, 1))
	}
}
