// Package ddata implements the distributed data views of the paper: data
// is physically distributed over ranks but logically centralized from the
// user's perspective. Global indexing and NumPy-style slicing (negative
// indices included) are converted to rank-local accesses transparently
// (paper Listings 2 and 3).
package ddata

import (
	"fmt"
	"strings"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/mpi"
)

// Array is a rank's handle on a logically-global array backed by a
// distributed field.Function.
type Array struct {
	F      *field.Function
	Decomp *grid.Decomposition
	Rank   int
}

// New wraps a distributed function. Decomp may be nil for serial fields,
// in which case the whole grid is local.
func New(f *field.Function, dec *grid.Decomposition, rank int) *Array {
	return &Array{F: f, Decomp: dec, Rank: rank}
}

// Slice is a per-dimension half-open range with NumPy semantics: negative
// bounds count from the end; Lo==0 && Hi==0 with All selects everything.
type Slice struct {
	Lo, Hi int
	All    bool
}

// SliceAll selects a full dimension.
func SliceAll() Slice { return Slice{All: true} }

// SliceRange selects [lo, hi) with negative-index normalisation.
func SliceRange(lo, hi int) Slice { return Slice{Lo: lo, Hi: hi} }

// normalize resolves the slice against a dimension extent.
func (s Slice) normalize(n int) (lo, hi int, err error) {
	if s.All {
		return 0, n, nil
	}
	lo, hi = s.Lo, s.Hi
	if lo < 0 {
		lo += n
	}
	if hi < 0 {
		hi += n
	}
	if lo < 0 || hi > n || lo > hi {
		return 0, 0, fmt.Errorf("ddata: slice [%d:%d] out of range for extent %d", s.Lo, s.Hi, n)
	}
	return lo, hi, nil
}

// globalBox resolves slices into a global half-open box.
func (a *Array) globalBox(slices []Slice) (lo, hi []int, err error) {
	shape := a.F.Grid.Shape
	if len(slices) != len(shape) {
		return nil, nil, fmt.Errorf("ddata: %d slices for %d dims", len(slices), len(shape))
	}
	lo = make([]int, len(shape))
	hi = make([]int, len(shape))
	for d, s := range slices {
		lo[d], hi[d], err = s.normalize(shape[d])
		if err != nil {
			return nil, nil, err
		}
	}
	return lo, hi, nil
}

// localIntersection clips a global box to this rank's DOMAIN and returns
// the buffer-coordinate region; empty when disjoint.
func (a *Array) localIntersection(glo, ghi []int) field.Region {
	nd := a.F.NDims()
	r := field.Region{Lo: make([]int, nd), Hi: make([]int, nd)}
	for d := 0; d < nd; d++ {
		olo := a.F.Origin[d]
		ohi := olo + a.F.LocalShape[d]
		lo := max(glo[d], olo)
		hi := min(ghi[d], ohi)
		if hi < lo {
			hi = lo
		}
		// Convert to buffer coordinates (domain origin at Halo[d]).
		r.Lo[d] = lo - olo + a.F.Halo[d]
		r.Hi[d] = hi - olo + a.F.Halo[d]
	}
	return r
}

// SetSlice assigns a constant to a global slice of time buffer t; each rank
// writes only its owned intersection — the global-to-local conversion of
// paper Listing 2.
func (a *Array) SetSlice(t int, slices []Slice, v float32) error {
	glo, ghi, err := a.globalBox(slices)
	if err != nil {
		return err
	}
	r := a.localIntersection(glo, ghi)
	if r.Empty() {
		return nil
	}
	buf := a.F.Buf(t)
	fillRegion(buf, r, func([]int) float32 { return v })
	return nil
}

// SetFunc assigns v(globalCoords) over a global slice.
func (a *Array) SetFunc(t int, slices []Slice, v func(global []int) float32) error {
	glo, ghi, err := a.globalBox(slices)
	if err != nil {
		return err
	}
	r := a.localIntersection(glo, ghi)
	if r.Empty() {
		return nil
	}
	buf := a.F.Buf(t)
	fillRegion(buf, r, func(idx []int) float32 {
		g := make([]int, len(idx))
		for d := range idx {
			g[d] = idx[d] - a.F.Halo[d] + a.F.Origin[d]
		}
		return v(g)
	})
	return nil
}

// At reads the value at a global point if owned locally; ok=false otherwise.
func (a *Array) At(t int, global []int) (float32, bool) {
	idx := make([]int, len(global))
	for d, g := range global {
		l := g - a.F.Origin[d]
		if l < 0 || l >= a.F.LocalShape[d] {
			return 0, false
		}
		idx[d] = l + a.F.Halo[d]
	}
	return a.F.Buf(t).At(idx...), true
}

// fillRegion iterates a region applying fn(bufferIdx).
func fillRegion(buf *field.Buffer, r field.Region, fn func(idx []int) float32) {
	nd := len(r.Lo)
	idx := append([]int(nil), r.Lo...)
	if r.Empty() {
		return
	}
	for {
		buf.Set(fn(idx), idx...)
		d := nd - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < r.Hi[d] {
				break
			}
			idx[d] = r.Lo[d]
		}
		if d < 0 {
			return
		}
	}
}

// LocalString renders the rank-local DOMAIN of time buffer t like the
// paper's Listing 2/3 stdout blocks (2-D only), e.g.
//
//	[[0.00 0.00]
//	 [0.00 1.00]]
func (a *Array) LocalString(t int) string {
	if a.F.NDims() != 2 {
		return fmt.Sprintf("<%d-D local view>", a.F.NDims())
	}
	buf := a.F.Buf(t)
	dom := a.F.DomainRegion()
	var b strings.Builder
	b.WriteString("[")
	for i := dom.Lo[0]; i < dom.Hi[0]; i++ {
		if i > dom.Lo[0] {
			b.WriteString("\n ")
		}
		b.WriteString("[")
		for j := dom.Lo[1]; j < dom.Hi[1]; j++ {
			if j > dom.Lo[1] {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.2f", buf.At(i, j))
		}
		b.WriteString("]")
	}
	b.WriteString("]")
	return b.String()
}

// Gather collects the global DOMAIN data of time buffer t on root using
// the communicator; returns the row-major global array on root, nil
// elsewhere. Works for any rank count including 1.
func (a *Array) Gather(c *mpi.Comm, root, t int) []float32 {
	dom := a.F.DomainRegion()
	local := make([]float32, dom.Size())
	a.F.Buf(t).Pack(dom, local)
	if c == nil || c.Size() == 1 {
		return local
	}
	const tagBase = 1 << 20
	if c.Rank() != root {
		c.Send(root, tagBase+c.Rank(), local)
		return nil
	}
	g := a.F.Grid
	out := make([]float32, g.Points())
	place := func(rank int, data []float32) {
		origin := a.Decomp.LocalOrigin(rank)
		shape := a.Decomp.LocalShape(rank)
		// Row-major scatter of the rank's chunk into the global array.
		nd := len(shape)
		idx := make([]int, nd)
		pos := 0
		for {
			goff := 0
			for d := 0; d < nd; d++ {
				gidx := origin[d] + idx[d]
				stride := 1
				for k := d + 1; k < nd; k++ {
					stride *= g.Shape[k]
				}
				goff += gidx * stride
			}
			rowLen := shape[nd-1]
			copy(out[goff:goff+rowLen], data[pos:pos+rowLen])
			pos += rowLen
			d := nd - 2
			for ; d >= 0; d-- {
				idx[d]++
				if idx[d] < shape[d] {
					break
				}
				idx[d] = 0
			}
			if d < 0 {
				break
			}
		}
	}
	place(root, local)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		shape := a.Decomp.LocalShape(r)
		n := 1
		for _, s := range shape {
			n *= s
		}
		buf := make([]float32, n)
		c.Recv(r, tagBase+r, buf)
		place(r, buf)
	}
	return out
}

// Scatter distributes a row-major global array from root into each rank's
// DOMAIN of time buffer t — the inverse of Gather. Every rank calls it;
// data is only read on root.
func (a *Array) Scatter(c *mpi.Comm, root, t int, data []float32) {
	g := a.F.Grid
	dom := a.F.DomainRegion()
	const tagBase = 1 << 21
	extract := func(rank int) []float32 {
		origin := a.Decomp.LocalOrigin(rank)
		shape := a.Decomp.LocalShape(rank)
		n := 1
		for _, s := range shape {
			n *= s
		}
		out := make([]float32, 0, n)
		nd := len(shape)
		idx := make([]int, nd)
		for {
			goff := 0
			for d := 0; d < nd; d++ {
				stride := 1
				for k := d + 1; k < nd; k++ {
					stride *= g.Shape[k]
				}
				goff += (origin[d] + idx[d]) * stride
			}
			rowLen := shape[nd-1]
			out = append(out, data[goff:goff+rowLen]...)
			d := nd - 2
			for ; d >= 0; d-- {
				idx[d]++
				if idx[d] < shape[d] {
					break
				}
				idx[d] = 0
			}
			if d < 0 {
				break
			}
		}
		return out
	}
	if c == nil || c.Size() == 1 {
		a.F.Buf(t).Unpack(dom, data[:dom.Size()])
		return
	}
	if c.Rank() == root {
		for r := 0; r < c.Size(); r++ {
			chunk := extract(r)
			if r == root {
				a.F.Buf(t).Unpack(dom, chunk)
				continue
			}
			c.Send(r, tagBase+r, chunk)
		}
		return
	}
	buf := make([]float32, dom.Size())
	c.Recv(root, tagBase+c.Rank(), buf)
	a.F.Buf(t).Unpack(dom, buf)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
