package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// reset returns the subsystem to a pristine disabled state.
func reset() {
	DisableAll()
	Reset()
}

func TestDisabledIsInert(t *testing.T) {
	reset()
	sp := Begin(0, PhaseCompute, 3)
	sp.End()
	CountMsg(0, 100)
	Add(0, CtrShellPoints, 7)
	RecordDecision(Decision{Config: "x"})
	m := Snapshot()
	if m.Total.StepMsgs != 0 || m.Total.ShellPoints != 0 || len(m.Decisions) != 0 {
		t.Fatalf("disabled subsystem recorded data: %+v", m)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}

func TestCountersAndClassification(t *testing.T) {
	reset()
	EnableMetrics()
	defer reset()

	SetPreamble(1, true)
	CountMsg(1, 40)
	CountMsg(1, 60)
	SetPreamble(1, false)
	CountMsg(1, 80)
	Add(1, CtrShellPoints, 5)
	Add(1, CtrInstrsPerPoint, 33)
	Add(1, CtrInstrsPerPoint, 44) // gauge: overwrite, not accumulate

	m := Snapshot()
	if len(m.Ranks) != 1 || m.Ranks[0].Rank != 1 {
		t.Fatalf("want one rank-1 entry, got %+v", m.Ranks)
	}
	r := m.Ranks[0]
	if r.PreambleMsgs != 2 || r.PreambleBytes != 100 {
		t.Errorf("preamble counters = %d msgs / %d bytes, want 2 / 100", r.PreambleMsgs, r.PreambleBytes)
	}
	if r.StepMsgs != 1 || r.StepBytes != 80 {
		t.Errorf("step counters = %d msgs / %d bytes, want 1 / 80", r.StepMsgs, r.StepBytes)
	}
	if r.ShellPoints != 5 {
		t.Errorf("shell points = %d, want 5", r.ShellPoints)
	}
	if r.InstrsPerPoint != 44 {
		t.Errorf("instrs/point gauge = %d, want 44 (last set wins)", r.InstrsPerPoint)
	}
	if m.Total.StepMsgs != 1 || m.Total.PreambleMsgs != 2 {
		t.Errorf("total mis-aggregated: %+v", m.Total)
	}
}

func TestMetricsOnlyTimesWaits(t *testing.T) {
	reset()
	EnableMetrics()
	defer reset()

	sp := Begin(0, PhaseCompute, 0)
	sp.End()
	w := Begin(0, PhaseWait, 0)
	w.End()
	m := Snapshot()
	if len(m.Ranks) != 1 || m.Ranks[0].RecvWaitNs <= 0 {
		t.Fatalf("metrics mode must accumulate recv-wait ns, got %+v", m.Ranks)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"ph":"X"`) {
		t.Error("metrics-only mode must not record trace spans")
	}
}

func TestTraceExportShape(t *testing.T) {
	reset()
	EnableTracing()
	defer reset()

	Begin(0, PhaseCompute, 0).End()
	Begin(0, PhaseExchange, 0).End()
	BeginStream(0, 1, PhaseWait, 0).End()
	Begin(2, PhaseCompute, 1).End()

	var buf bytes.Buffer
	if err := WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args struct {
				Step *int    `json:"step"`
				Name *string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, meta int
	phases := map[string]bool{}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			phases[ev.Name] = true
			pids[ev.Pid] = true
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("negative ts/dur in %+v", ev)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if spans != 4 {
		t.Errorf("want 4 duration events, got %d", spans)
	}
	if meta == 0 {
		t.Error("want process/thread metadata events")
	}
	for _, want := range []string{"compute", "exchange", "wait"} {
		if !phases[want] {
			t.Errorf("missing phase %q in trace, have %v", want, phases)
		}
	}
	if !pids[0] || !pids[2] {
		t.Errorf("want pids {0,2}, got %v", pids)
	}
	// The wait span must also have fed the metrics counter.
	if Snapshot().Total.RecvWaitNs <= 0 {
		t.Error("tracing mode must still accumulate recv-wait ns")
	}
}

func TestRingWrapSurvives(t *testing.T) {
	reset()
	EnableTracing()
	defer reset()
	for i := 0; i < ringCap+100; i++ {
		Begin(0, PhaseCompute, i).End()
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("wrapped trace is not valid JSON: %v", err)
	}
	if n := len(doc["traceEvents"].([]any)); n < ringCap {
		t.Errorf("wrapped ring exported %d events, want >= %d", n, ringCap)
	}
}

func TestRegret(t *testing.T) {
	reset()
	EnableMetrics()
	defer reset()
	RecordDecision(Decision{Policy: "search", Config: "a", MeasuredSec: 1.0})
	RecordDecision(Decision{Policy: "search", Config: "b", MeasuredSec: 1.2, Chosen: true})
	m := Snapshot()
	if got, want := m.Regret, 0.2; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("regret = %v, want %v", got, want)
	}
	Reset()
	RecordDecision(Decision{Policy: "model", Config: "a", PredictedSec: 1, Chosen: true})
	if r := Snapshot().Regret; r != 0 {
		t.Errorf("model-only decisions must have zero regret, got %v", r)
	}
}

func TestResetClears(t *testing.T) {
	reset()
	EnableTracing()
	defer reset()
	Begin(0, PhaseCompute, 0).End()
	CountMsg(0, 10)
	Reset()
	m := Snapshot()
	if len(m.Ranks) != 0 || m.Total.StepMsgs != 0 {
		t.Fatalf("Reset left data behind: %+v", m)
	}
	if !TracingEnabled() {
		t.Error("Reset must not change the enabled state")
	}
}

// TestDisabledCallCost is the core of the trace-overhead guard: with the
// subsystem off, one Begin/End pair plus one CountMsg must cost well under
// 150ns. Real instrumented code paths execute a handful of such calls per
// timestep (tens of microseconds of kernel work), so this bound keeps the
// disabled overhead far below the 2% acceptance budget; the end-to-end
// check lives in propagators' TestObsOverheadDisabled.
func TestDisabledCallCost(t *testing.T) {
	reset()
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := Begin(0, PhaseCompute, i)
			sp.End()
			CountMsg(0, 128)
		}
	})
	perOp := float64(res.NsPerOp())
	if perOp > 150 {
		t.Errorf("disabled Begin/End+CountMsg costs %.1f ns, want <= 150", perOp)
	}
	t.Logf("disabled instrumentation: %.2f ns per Begin/End+CountMsg", perOp)
}
