package obs

import (
	"encoding/json"
	"os"
	"sort"
)

// Decision is one autotuner verdict: a candidate configuration with its
// model-predicted cost and (for search trials) its measured cost. The
// decision log is what the regret report is computed from.
type Decision struct {
	// Rank is the recording rank (decisions are collective, so core
	// records them on rank 0 only).
	Rank int `json:"rank"`
	// Policy is the autotune policy that produced the decision
	// ("model" or "search").
	Policy string `json:"policy"`
	// Config is the candidate's ExecConfig string ("mode/wN/tM[/kK]").
	Config string `json:"config"`
	// PredictedSec is the performance model's per-step cost prediction.
	PredictedSec float64 `json:"predicted_sec"`
	// MeasuredSec is the measured per-step trial cost (0 for model-only
	// decisions, which are never timed).
	MeasuredSec float64 `json:"measured_sec,omitempty"`
	// Chosen marks the configuration the operator adopted.
	Chosen bool `json:"chosen"`
}

// RecordDecision appends one autotuner decision to the log (no-op when
// recording is off).
func RecordDecision(d Decision) {
	if mode.Load() == modeOff {
		return
	}
	decMu.Lock()
	decisions = append(decisions, d)
	decMu.Unlock()
}

// RankMetrics is one rank's counter snapshot (or, for Metrics.Total, the
// sum over ranks).
type RankMetrics struct {
	// Rank identifies the rank (-1 in the all-rank total).
	Rank int `json:"rank"`
	// StepMsgs / StepBytes count steady-state halo messages and payload
	// bytes (per-step and tile-head exchanges).
	StepMsgs  int64 `json:"step_msgs"`
	StepBytes int64 `json:"step_bytes"`
	// PreambleMsgs / PreambleBytes count once-per-run exchanges (schedule
	// preamble, hoisted parameters, retarget refreshes).
	PreambleMsgs  int64 `json:"preamble_msgs"`
	PreambleBytes int64 `json:"preamble_bytes"`
	// RecvWaitNs is the time spent blocked in receive waits.
	RecvWaitNs int64 `json:"recv_wait_ns"`
	// ShellPoints counts redundantly recomputed time-tile shell points.
	ShellPoints int64 `json:"shell_points"`
	// WarmupSteps / TrialSteps / SteadySteps split the executed timesteps
	// into autotune warmup, autotune search trials, and steady state.
	WarmupSteps int64 `json:"warmup_steps"`
	TrialSteps  int64 `json:"trial_steps"`
	SteadySteps int64 `json:"steady_steps"`
	// CkptSaves / CkptRestores count checkpoint store operations.
	CkptSaves    int64 `json:"ckpt_saves"`
	CkptRestores int64 `json:"ckpt_restores"`
	// InstrsPerPoint is the compiled operator's per-point VM instruction
	// count gauge (the total reports the maximum over ranks, not a sum).
	InstrsPerPoint int64 `json:"instrs_per_point"`
	// OpCompiles counts kernel-set compilations actually performed; with
	// the operator cache on this is the number of unique schedule keys.
	OpCompiles int64 `json:"op_compiles"`
	// OpCacheHits / OpCacheMisses count operator constructions served by
	// rebinding a cached kernel set vs. compiling a fresh one.
	OpCacheHits   int64 `json:"opcache_hits"`
	OpCacheMisses int64 `json:"opcache_misses"`
	// ShotsDone counts FWI shots completed by the shot scheduler.
	ShotsDone int64 `json:"shots_done"`
	// ShotWorkers is the shot scheduler's worker-pool size gauge (the
	// total reports the maximum over ranks, not a sum).
	ShotWorkers int64 `json:"shot_workers"`
	// PoolSyncNs is the worker pool's cumulative dispatch join wait.
	PoolSyncNs int64 `json:"pool_sync_ns"`
	// PoolIdleNs is the pool workers' cumulative in-dispatch idle time.
	PoolIdleNs int64 `json:"pool_idle_ns"`
	// StealCount counts pool tiles executed away from their static owner.
	StealCount int64 `json:"steal_count"`
}

// Metrics is a full snapshot of the metrics registry — the "obs" block
// embedded in every BENCH_*.json report.
type Metrics struct {
	// Ranks holds one entry per rank that recorded anything.
	Ranks []RankMetrics `json:"ranks,omitempty"`
	// Total sums the per-rank counters (Rank == -1).
	Total RankMetrics `json:"total"`
	// Decisions is the autotuner decision log.
	Decisions []Decision `json:"autotune_decisions,omitempty"`
	// Regret is chosen-measured-cost / best-measured-cost - 1 over the
	// logged search trials: 0 when the autotuner picked the empirically
	// best candidate (or when nothing was measured).
	Regret float64 `json:"autotune_regret"`
}

func (r *recorder) snapshot(rank int) RankMetrics {
	return RankMetrics{
		Rank:           rank,
		StepMsgs:       r.ctr[CtrStepMsgs].Load(),
		StepBytes:      r.ctr[CtrStepBytes].Load(),
		PreambleMsgs:   r.ctr[CtrPreMsgs].Load(),
		PreambleBytes:  r.ctr[CtrPreBytes].Load(),
		RecvWaitNs:     r.ctr[CtrRecvWaitNs].Load(),
		ShellPoints:    r.ctr[CtrShellPoints].Load(),
		WarmupSteps:    r.ctr[CtrWarmupSteps].Load(),
		TrialSteps:     r.ctr[CtrTrialSteps].Load(),
		SteadySteps:    r.ctr[CtrSteadySteps].Load(),
		CkptSaves:      r.ctr[CtrCkptSaves].Load(),
		CkptRestores:   r.ctr[CtrCkptRestores].Load(),
		InstrsPerPoint: r.ctr[CtrInstrsPerPoint].Load(),
		OpCompiles:     r.ctr[CtrOpCompiles].Load(),
		OpCacheHits:    r.ctr[CtrOpCacheHits].Load(),
		OpCacheMisses:  r.ctr[CtrOpCacheMisses].Load(),
		ShotsDone:      r.ctr[CtrShotsDone].Load(),
		ShotWorkers:    r.ctr[CtrShotWorkers].Load(),
		PoolSyncNs:     r.ctr[CtrPoolSyncNs].Load(),
		PoolIdleNs:     r.ctr[CtrPoolIdleNs].Load(),
		StealCount:     r.ctr[CtrStealCount].Load(),
	}
}

func (m *RankMetrics) accumulate(r RankMetrics) {
	m.StepMsgs += r.StepMsgs
	m.StepBytes += r.StepBytes
	m.PreambleMsgs += r.PreambleMsgs
	m.PreambleBytes += r.PreambleBytes
	m.RecvWaitNs += r.RecvWaitNs
	m.ShellPoints += r.ShellPoints
	m.WarmupSteps += r.WarmupSteps
	m.TrialSteps += r.TrialSteps
	m.SteadySteps += r.SteadySteps
	m.CkptSaves += r.CkptSaves
	m.CkptRestores += r.CkptRestores
	if r.InstrsPerPoint > m.InstrsPerPoint {
		m.InstrsPerPoint = r.InstrsPerPoint
	}
	m.OpCompiles += r.OpCompiles
	m.OpCacheHits += r.OpCacheHits
	m.OpCacheMisses += r.OpCacheMisses
	m.ShotsDone += r.ShotsDone
	if r.ShotWorkers > m.ShotWorkers {
		m.ShotWorkers = r.ShotWorkers
	}
	m.PoolSyncNs += r.PoolSyncNs
	m.PoolIdleNs += r.PoolIdleNs
	m.StealCount += r.StealCount
}

// Snapshot collects the current state of every rank's counters plus the
// decision log into a Metrics report. It is safe to call while recording
// continues (counters are read atomically, one at a time).
func Snapshot() Metrics {
	m := Metrics{Total: RankMetrics{Rank: -1}}
	for rank := 0; rank < MaxRanks; rank++ {
		r := recs[rank].Load()
		if r == nil {
			continue
		}
		rm := r.snapshot(rank)
		if rm == (RankMetrics{Rank: rank}) {
			continue
		}
		m.Ranks = append(m.Ranks, rm)
		m.Total.accumulate(rm)
	}
	decMu.Lock()
	m.Decisions = append([]Decision(nil), decisions...)
	decMu.Unlock()
	sort.SliceStable(m.Decisions, func(i, j int) bool {
		return m.Decisions[i].Rank < m.Decisions[j].Rank
	})
	m.Regret = regret(m.Decisions)
	return m
}

// regret computes chosen/best - 1 over the measured decisions; 0 when the
// log holds no measured trial or no chosen entry.
func regret(ds []Decision) float64 {
	best, chosen := 0.0, 0.0
	for _, d := range ds {
		if d.MeasuredSec <= 0 {
			continue
		}
		if best == 0 || d.MeasuredSec < best {
			best = d.MeasuredSec
		}
		if d.Chosen && (chosen == 0 || d.MeasuredSec < chosen) {
			chosen = d.MeasuredSec
		}
	}
	if best == 0 || chosen == 0 {
		return 0
	}
	return chosen/best - 1
}

// WriteMetricsFile writes the current Snapshot as indented JSON.
func WriteMetricsFile(path string) error {
	m := Snapshot()
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
