package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
)

// envOnce guards the one-time environment probe of EnvSetup.
var envOnce sync.Once

// EnvSetup arms the subsystem from the environment: DEVIGO_TRACE=<file>
// enables tracing, DEVIGO_METRICS=<file> enables metrics. The operator
// constructor calls it, so any binary that builds an operator honours the
// variables without extra wiring; FlushEnv writes the files at exit.
func EnvSetup() {
	envOnce.Do(func() {
		if os.Getenv(TraceEnvVar) != "" {
			EnableTracing()
		} else if os.Getenv(MetricsEnvVar) != "" {
			EnableMetrics()
		}
	})
}

// FlushEnv writes the outputs requested via the environment: the Chrome
// trace to $DEVIGO_TRACE and the metrics snapshot to $DEVIGO_METRICS
// (whichever are set). Call it once after the run completes — the CLI
// mains do this for every rank's world.
func FlushEnv() error {
	if path := os.Getenv(TraceEnvVar); path != "" {
		if err := WriteTraceFile(path); err != nil {
			return err
		}
	}
	if path := os.Getenv(MetricsEnvVar); path != "" {
		if err := WriteMetricsFile(path); err != nil {
			return err
		}
	}
	return nil
}

// WriteTraceFile writes the recorded spans as Chrome trace_event JSON.
func WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTrace emits every recorded span in the Chrome trace_event JSON
// object format (load the file in Perfetto or chrome://tracing). Each
// rank becomes one process (pid = rank) and each stream one thread
// within it (tid 0 = the operator time loop, tid s+1 = exchanger stream
// s, tid WorkerStream(w) = pool worker w), so the viewer lays the run
// out as one track per rank x stream.
// Timestamps are microseconds since the process-wide recording epoch.
func WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for rank := 0; rank < MaxRanks; rank++ {
		r := recs[rank].Load()
		if r == nil {
			continue
		}
		n := r.n.Load()
		if n == 0 {
			continue
		}
		if n > ringCap {
			n = ringCap
		}
		emit(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"rank %d"}}`, rank, rank)
		seen := map[int32]bool{}
		for i := uint64(0); i < n; i++ {
			sp := &r.buf[i]
			if !seen[sp.stream] {
				seen[sp.stream] = true
				tname := "timeloop"
				switch {
				case sp.stream >= workerStreamBase:
					tname = fmt.Sprintf("worker %d", sp.stream-workerStreamBase)
				case sp.stream > 0:
					tname = fmt.Sprintf("halo stream %d", sp.stream-1)
				}
				emit(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"%s"}}`,
					rank, sp.stream, tname)
			}
			// ts/dur are float microseconds; keep ns resolution as .3f.
			emit(`{"ph":"X","name":"%s","cat":"devigo","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"step":%d}}`,
				sp.phase, rank, sp.stream,
				float64(sp.start)/1e3, float64(sp.dur)/1e3, sp.step)
		}
	}
	bw.WriteString("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"devigo\"}}\n")
	return bw.Flush()
}
