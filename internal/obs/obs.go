// Package obs is the runtime tracing and metrics subsystem: a
// zero-dependency, near-zero-overhead-when-disabled observability layer
// threaded through the operator runtime, the halo exchangers, the
// checkpoint store and the autotuner.
//
// Two facilities share one per-rank recorder:
//
//   - Spans: timed phase intervals (cluster compute, halo pack/send/
//     wait/unpack, redundant shell recompute, checkpoint save/restore,
//     autotune trials) written into a lock-free per-rank ring buffer and
//     exported as Chrome trace_event JSON (Perfetto-loadable, one track
//     per rank x stream) — see WriteTrace.
//   - Counters: structured per-rank counts (messages, bytes, receive-wait
//     nanoseconds, redundant shell points, warmup/trial/steady steps)
//     plus the autotuner's decision log, snapshotted into the Metrics
//     report embedded in every BENCH_*.json — see Snapshot.
//
// Everything is off by default. The DEVIGO_TRACE and DEVIGO_METRICS
// environment variables (or EnableTracing/EnableMetrics) switch the
// subsystem on; with it off, every instrumentation site reduces to one
// atomic load and a predictable branch, so instrumented hot loops run at
// pre-instrumentation speed (the overhead guard test holds this to
// within noise).
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceEnvVar names the trace output file: DEVIGO_TRACE=/path/trace.json
// enables span recording and marks where FlushEnv writes the Chrome
// trace_event JSON.
const TraceEnvVar = "DEVIGO_TRACE"

// MetricsEnvVar names the metrics output file: DEVIGO_METRICS=/path/m.json
// enables counter recording and marks where FlushEnv writes the Snapshot.
const MetricsEnvVar = "DEVIGO_METRICS"

// Phase labels one span kind — the taxonomy of where time goes inside a
// timestep (docs/OBSERVABILITY.md documents each).
type Phase uint8

const (
	// PhaseCompute is a cluster kernel sweep over (part of) the owned box.
	PhaseCompute Phase = iota
	// PhaseShell is the redundant ghost-shell recompute of a time-tiled
	// substep (the communication-avoidance tax).
	PhaseShell
	// PhaseExchange is an operator-level halo-exchange section (the whole
	// synchronous exchange of one step, or a tile-head deep exchange).
	PhaseExchange
	// PhasePack is the staging of one message's send region into its
	// exchange buffer.
	PhasePack
	// PhaseSend is the posting of one packed message.
	PhaseSend
	// PhaseWait is a blocking receive wait; its duration also accumulates
	// into the CtrRecvWaitNs counter.
	PhaseWait
	// PhaseUnpack is the scatter of one received message into the halo.
	PhaseUnpack
	// PhaseCkptSave is a checkpoint snapshot of the wavefields.
	PhaseCkptSave
	// PhaseCkptRestore is a checkpoint restore during a reverse sweep.
	PhaseCkptRestore
	// PhaseAutotuneTrial is one timed candidate window of the empirical
	// search policy.
	PhaseAutotuneTrial
	// PhaseWarmup is the untimed cache-warming step before the first trial.
	PhaseWarmup
	// PhaseShot is one whole FWI shot dispatched by the shot scheduler
	// (a checkpointed forward + adjoint gradient in its own world).
	PhaseShot
	// PhaseWorker is one pool worker's share of one dispatched kernel
	// sweep, recorded on that worker's dedicated trace stream
	// (WorkerStream) so the trace shows the team's load balance.
	PhaseWorker

	numPhases
)

var phaseNames = [numPhases]string{
	"compute", "shell", "exchange", "pack", "send", "wait", "unpack",
	"ckpt_save", "ckpt_restore", "autotune_trial", "warmup", "shot",
	"worker",
}

// String returns the phase's trace-event name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Ctr enumerates the per-rank counters of the metrics registry.
type Ctr uint8

const (
	// CtrStepMsgs counts halo messages posted by steady-state (per-step or
	// tile-head) exchanges.
	CtrStepMsgs Ctr = iota
	// CtrStepBytes counts the payload bytes of those messages.
	CtrStepBytes
	// CtrPreMsgs counts once-per-run messages: preamble and hoisted
	// time-invariant parameter exchanges, and retarget refreshes.
	CtrPreMsgs
	// CtrPreBytes counts the payload bytes of those messages.
	CtrPreBytes
	// CtrRecvWaitNs accumulates nanoseconds spent blocked in receive
	// waits (PhaseWait spans).
	CtrRecvWaitNs
	// CtrShellPoints counts redundantly recomputed ghost-shell points of
	// time-tiled substeps.
	CtrShellPoints
	// CtrWarmupSteps counts untimed autotune warmup timesteps.
	CtrWarmupSteps
	// CtrTrialSteps counts timesteps consumed by autotune search trials.
	CtrTrialSteps
	// CtrSteadySteps counts steady-state timesteps (after tuning settled).
	CtrSteadySteps
	// CtrCkptSaves counts checkpoint snapshot operations.
	CtrCkptSaves
	// CtrCkptRestores counts checkpoint restore operations.
	CtrCkptRestores
	// CtrInstrsPerPoint is a gauge (set, not added): the compiled
	// operator's summed per-point VM instruction count.
	CtrInstrsPerPoint
	// CtrOpCompiles counts kernel-set compilations actually performed —
	// with the operator cache on, exactly one per unique schedule key.
	CtrOpCompiles
	// CtrOpCacheHits counts operator constructions served by rebinding a
	// cached kernel set instead of compiling.
	CtrOpCacheHits
	// CtrOpCacheMisses counts operator constructions that found no cached
	// kernel set (and therefore compiled one).
	CtrOpCacheMisses
	// CtrShotsDone counts FWI shots completed by the shot scheduler.
	CtrShotsDone
	// CtrShotWorkers is a gauge (set, not added): the shot scheduler's
	// effective concurrent worker-pool size.
	CtrShotWorkers
	// CtrPoolSyncNs accumulates the worker pool's dispatch sync cost: the
	// caller's join-barrier wait, summed over dispatches.
	CtrPoolSyncNs
	// CtrPoolIdleNs accumulates spawned pool workers' idle time inside
	// dispatches (join time minus each worker's finish time) — the load
	// imbalance the static partition leaves on the table.
	CtrPoolIdleNs
	// CtrStealCount counts tiles executed by a worker other than their
	// static block-cyclic owner (bounded stealing on shell sweeps).
	CtrStealCount

	numCtrs
)

// MaxRanks bounds the per-rank recorder table; ranks beyond it share the
// last slot (in-process worlds here are far smaller).
const MaxRanks = 64

// workerStreamBase offsets the per-pool-worker trace streams: streams
// 1..workerStreamBase-1 are halo exchanger streams, streams >= the base
// are pool workers (WriteTrace names them accordingly).
const workerStreamBase = 1000

// WorkerStream returns the trace stream id of pool worker w — a
// dedicated per-worker track within the rank's trace process.
func WorkerStream(w int) int { return workerStreamBase + w }

// ringCap is the per-rank span capacity (a power of two); older spans are
// overwritten once a rank records more.
const ringCap = 1 << 16

// spanRec is one completed span in the ring.
type spanRec struct {
	start  int64 // ns since the package epoch
	dur    int64
	step   int32
	stream int32
	phase  Phase
}

// recorder holds one rank's ring buffer, counters and exchange scope.
type recorder struct {
	n        atomic.Uint64
	ctr      [numCtrs]atomic.Int64
	preamble atomic.Bool
	buf      [ringCap]spanRec
}

func (r *recorder) add(sp spanRec) {
	i := r.n.Add(1) - 1
	r.buf[i&(ringCap-1)] = sp
}

// mode encodes the subsystem state: 0 off, 1 metrics only (counters +
// wait timing), 2 tracing (spans + counters).
var mode atomic.Int32

const (
	modeOff     = 0
	modeMetrics = 1
	modeTrace   = 2
)

var (
	recs  [MaxRanks]atomic.Pointer[recorder]
	epoch = time.Now()

	decMu     sync.Mutex
	decisions []Decision
)

func now() int64 { return int64(time.Since(epoch)) }

func forRank(rank int) *recorder {
	if rank < 0 {
		rank = 0
	}
	if rank >= MaxRanks {
		rank = MaxRanks - 1
	}
	if r := recs[rank].Load(); r != nil {
		return r
	}
	r := &recorder{}
	if !recs[rank].CompareAndSwap(nil, r) {
		r = recs[rank].Load()
	}
	return r
}

// EnableTracing switches on span recording (which implies counter
// recording — a trace without its counters would not cross-check).
func EnableTracing() { mode.Store(modeTrace) }

// EnableMetrics switches on counter recording without span recording,
// unless tracing is already on (tracing subsumes metrics).
func EnableMetrics() {
	mode.CompareAndSwap(modeOff, modeMetrics)
}

// DisableAll switches the subsystem off; recorded data survives until
// Reset.
func DisableAll() { mode.Store(modeOff) }

// TracingEnabled reports whether spans are being recorded.
func TracingEnabled() bool { return mode.Load() == modeTrace }

// MetricsEnabled reports whether counters are being recorded.
func MetricsEnabled() bool { return mode.Load() != modeOff }

// Active reports whether any recording is on — the single cheap check
// instrumentation sites gate on.
func Active() bool { return mode.Load() != modeOff }

// Reset clears every recorder (spans, counters, scopes) and the decision
// log, without changing the enabled state. Benchmarks call it between
// experiments so each report snapshots only its own runs.
func Reset() {
	for i := range recs {
		r := recs[i].Load()
		if r == nil {
			continue
		}
		r.n.Store(0)
		for c := range r.ctr {
			r.ctr[c].Store(0)
		}
		r.preamble.Store(false)
	}
	decMu.Lock()
	decisions = nil
	decMu.Unlock()
}

// Span is an in-flight timed phase; End completes it. The zero Span (as
// returned when recording is off) is inert.
type Span struct {
	r      *recorder
	t0     int64
	step   int32
	stream int32
	phase  Phase
	trace  bool
}

// Begin opens a span on the rank's main track (stream 0). When recording
// is off it returns the inert zero Span at the cost of one atomic load.
func Begin(rank int, ph Phase, step int) Span {
	return BeginStream(rank, 0, ph, step)
}

// BeginStream opens a span on an explicit track: trace tracks are
// (rank, stream) pairs, with stream 0 the operator's time loop and
// exchanger streams offset by one. In metrics-only mode just PhaseWait
// spans are timed (they feed CtrRecvWaitNs); everything else is inert.
func BeginStream(rank, stream int, ph Phase, step int) Span {
	m := mode.Load()
	if m == modeOff || (m == modeMetrics && ph != PhaseWait) {
		return Span{}
	}
	return Span{
		r:      forRank(rank),
		t0:     now(),
		step:   int32(step),
		stream: int32(stream),
		phase:  ph,
		trace:  m == modeTrace,
	}
}

// End completes the span: records it into the rank's ring (when tracing)
// and, for PhaseWait, accumulates the duration into CtrRecvWaitNs.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := now() - s.t0
	if s.phase == PhaseWait {
		s.r.ctr[CtrRecvWaitNs].Add(d)
	}
	if s.trace {
		s.r.add(spanRec{start: s.t0, dur: d, step: s.step, stream: s.stream, phase: s.phase})
	}
}

// Add accumulates v into a rank's counter (no-op when recording is off).
// The gauge counters (CtrInstrsPerPoint, CtrShotWorkers) overwrite
// instead of accumulating.
func Add(rank int, c Ctr, v int64) {
	if mode.Load() == modeOff {
		return
	}
	if c == CtrInstrsPerPoint || c == CtrShotWorkers {
		forRank(rank).ctr[c].Store(v)
		return
	}
	forRank(rank).ctr[c].Add(v)
}

// CountMsg records one posted halo message of n payload bytes, classified
// by the rank's current exchange scope (steady-state step exchange by
// default; preamble while SetPreamble(rank, true) is in effect).
func CountMsg(rank int, n int64) {
	if mode.Load() == modeOff {
		return
	}
	r := forRank(rank)
	if r.preamble.Load() {
		r.ctr[CtrPreMsgs].Add(1)
		r.ctr[CtrPreBytes].Add(n)
		return
	}
	r.ctr[CtrStepMsgs].Add(1)
	r.ctr[CtrStepBytes].Add(n)
}

// SetPreamble marks whether the rank is inside a once-per-run exchange
// section (schedule preamble, hoisted parameter exchanges, retarget
// refreshes), so CountMsg classifies traffic as preamble rather than
// steady state.
func SetPreamble(rank int, pre bool) {
	if mode.Load() == modeOff {
		return
	}
	forRank(rank).preamble.Store(pre)
}
