// Package runtime executes compiled stencil kernels: the devigo equivalent
// of the JIT-compiled C code. Clusters are compiled to a compact
// stack-machine program per equation; the executor runs the program over a
// tiled loop nest with optional worker-pool parallelism (the stand-in for
// OpenMP threads) and a progress hook between tiles (the stand-in for the
// MPI_Test prods of the full communication pattern).
package runtime

import (
	"fmt"

	"devigo/internal/field"
	"devigo/internal/ir"
	"devigo/internal/symbolic"
)

// Opcodes of the stencil VM.
const (
	opConst byte = iota // push literal v
	opSym               // push bound scalar syms[a]
	opLoad              // push field value via slot a
	opAdd               // pop a values, push their sum
	opMul               // pop a values, push their product
	opPow               // pop base, push base**a (integer exponent)
	opTemp              // push per-point temporary temps[a]
)

type instr struct {
	op byte
	a  int
	v  float64
}

// slot is a resolved field access: which function, which time offset, and
// the per-dimension stencil offset. The flat buffer displacement is
// derived from the field's *current* strides at every Run, so reallocating
// ghost storage (deep halos for a larger exchange interval) never requires
// recompiling kernels.
type slot struct {
	fieldIdx int
	timeOff  int
	off      [maxDims]int
}

// maxDims bounds the spatial dimensionality of compiled kernels (the
// compiler's dimension names are x, y, z).
const maxDims = 3

// CompiledEq is one lowered equation ready to execute.
type CompiledEq struct {
	outField   int
	outTimeOff int
	prog       []instr
	maxStack   int
	flops      int
}

// Kernel is a compiled cluster: every equation of one fused loop nest.
type Kernel struct {
	Fields []*field.Function
	names  []string
	Eqs    []CompiledEq
	slots  []slot
	// Temps are per-point scalar temporaries (CSE extractions), executed
	// in order before the equations at every point; temps[i] receives the
	// result of Temps[i].
	Temps []CompiledEq
	// SymNames maps the bound-scalar vector: syms[i] carries the value of
	// SymNames[i] at execution time.
	SymNames []string
	// Radius is the stencil radius per dimension (halo requirement).
	Radius []int
	// st is the kernel's private reusable dispatch state (slot tables,
	// per-worker scratch). Allocated at compile time and replaced on
	// Rebind, never shared between kernel copies.
	st *runState
}

// CompileCluster resolves a cluster against concrete field storage.
// The fields map must contain every function referenced by the cluster.
func CompileCluster(c *ir.Cluster, fields map[string]*field.Function) (*Kernel, error) {
	return CompileNest(nil, c.Eqs, c.Radius, fields)
}

// CompileNest compiles the *optimized* form of a loop nest: per-point CSE
// temporaries (assigns) followed by the update equations. Scalar symbols
// that match an assign name compile to temporary-register reads; all other
// symbols (including hoisted invariants) are bound at execution time via
// BindSyms.
func CompileNest(assigns []symbolic.Assignment, eqs []symbolic.Eq, radius []int,
	fields map[string]*field.Function) (*Kernel, error) {
	k := &Kernel{Radius: append([]int(nil), radius...)}
	fieldIdx := map[string]int{}
	symIdx := map[string]int{}
	slotIdx := map[slot]int{}
	tempIdx := map[string]int{}
	for i, a := range assigns {
		tempIdx[a.Name] = i
	}

	getField := func(name string) (int, error) {
		if i, ok := fieldIdx[name]; ok {
			return i, nil
		}
		f, ok := fields[name]
		if !ok {
			return 0, fmt.Errorf("runtime: no storage registered for field %q", name)
		}
		i := len(k.Fields)
		fieldIdx[name] = i
		k.Fields = append(k.Fields, f)
		k.names = append(k.names, name)
		return i, nil
	}
	getSym := func(name string) int {
		if i, ok := symIdx[name]; ok {
			return i
		}
		i := len(k.SymNames)
		symIdx[name] = i
		k.SymNames = append(k.SymNames, name)
		return i
	}
	getSlot := func(s slot) int {
		if i, ok := slotIdx[s]; ok {
			return i
		}
		i := len(k.slots)
		slotIdx[s] = i
		k.slots = append(k.slots, s)
		return i
	}

	var compile func(e symbolic.Expr, prog *[]instr, depth int, maxDepth *int) error
	compile = func(e symbolic.Expr, prog *[]instr, depth int, maxDepth *int) error {
		bump := func(d int) {
			if d > *maxDepth {
				*maxDepth = d
			}
		}
		switch v := e.(type) {
		case symbolic.Num:
			f, _ := v.Val.Float64()
			*prog = append(*prog, instr{op: opConst, v: f})
			bump(depth + 1)
		case symbolic.Sym:
			if ti, ok := tempIdx[v.Name]; ok {
				*prog = append(*prog, instr{op: opTemp, a: ti})
			} else {
				*prog = append(*prog, instr{op: opSym, a: getSym(v.Name)})
			}
			bump(depth + 1)
		case symbolic.Access:
			fi, err := getField(v.Fun.Name)
			if err != nil {
				return err
			}
			if len(v.Off) > maxDims {
				return fmt.Errorf("runtime: access %s exceeds %d dimensions", v, maxDims)
			}
			s := slot{fieldIdx: fi, timeOff: v.TimeOff}
			copy(s.off[:], v.Off)
			*prog = append(*prog, instr{op: opLoad, a: getSlot(s)})
			bump(depth + 1)
		case symbolic.Add:
			// Binary accumulation keeps the stack depth proportional to
			// tree depth rather than term count (3-D TTI sums have
			// hundreds of terms).
			for i, t := range v.Terms {
				d := depth
				if i > 0 {
					d = depth + 1
				}
				if err := compile(t, prog, d, maxDepth); err != nil {
					return err
				}
				if i > 0 {
					*prog = append(*prog, instr{op: opAdd, a: 2})
				}
			}
		case symbolic.Mul:
			for i, f := range v.Factors {
				d := depth
				if i > 0 {
					d = depth + 1
				}
				if err := compile(f, prog, d, maxDepth); err != nil {
					return err
				}
				if i > 0 {
					*prog = append(*prog, instr{op: opMul, a: 2})
				}
			}
		case symbolic.Pow:
			if err := compile(v.Base, prog, depth, maxDepth); err != nil {
				return err
			}
			*prog = append(*prog, instr{op: opPow, a: v.Exp})
		case symbolic.Deriv:
			return fmt.Errorf("runtime: unexpanded derivative reached codegen: %s", v)
		default:
			return fmt.Errorf("runtime: cannot compile %T", e)
		}
		return nil
	}

	for _, a := range assigns {
		ce := CompiledEq{flops: symbolic.FlopCount(a.Value)}
		if err := compile(a.Value, &ce.prog, 0, &ce.maxStack); err != nil {
			return nil, err
		}
		if ce.maxStack > stackCap {
			return nil, fmt.Errorf("runtime: temporary too deep (stack %d > %d)", ce.maxStack, stackCap)
		}
		k.Temps = append(k.Temps, ce)
	}
	if len(k.Temps) > tempCap {
		return nil, fmt.Errorf("runtime: too many per-point temporaries (%d > %d)", len(k.Temps), tempCap)
	}
	for _, eq := range eqs {
		lhs := eq.LHS.(symbolic.Access)
		fi, err := getField(lhs.Fun.Name)
		if err != nil {
			return nil, err
		}
		ce := CompiledEq{outField: fi, outTimeOff: lhs.TimeOff, flops: symbolic.FlopCount(eq.RHS)}
		if err := compile(eq.RHS, &ce.prog, 0, &ce.maxStack); err != nil {
			return nil, err
		}
		if ce.maxStack > stackCap {
			return nil, fmt.Errorf("runtime: expression too deep (stack %d > %d)", ce.maxStack, stackCap)
		}
		k.Eqs = append(k.Eqs, ce)
	}
	// Validate that all fields share the local domain shape; differing halo
	// widths are fine (strides are resolved at execution time).
	for i := 1; i < len(k.Fields); i++ {
		for d := range k.Fields[0].LocalShape {
			if k.Fields[i].LocalShape[d] != k.Fields[0].LocalShape[d] {
				return nil, fmt.Errorf("runtime: fields %s and %s disagree on local shape",
					k.names[0], k.names[i])
			}
		}
	}
	k.st = newRunState(k)
	return k, nil
}

// StencilRadius returns the per-dimension stencil radius (the execution
// contract shared with the bytecode engine).
func (k *Kernel) StencilRadius() []int { return k.Radius }

// FlopsPerPoint reports the per-point flop cost of the compiled kernel.
func (k *Kernel) FlopsPerPoint() int {
	n := 0
	for _, e := range k.Eqs {
		n += e.flops + 1
	}
	return n
}

// InstrsPerPoint reports the number of VM instructions the interpreter
// dispatches per grid point: the summed program lengths of every per-point
// temporary and update equation. The autotuner's cost model scales this by
// a per-instruction latency to predict compute time.
func (k *Kernel) InstrsPerPoint() int {
	n := 0
	for _, e := range k.Temps {
		n += len(e.prog)
	}
	for _, e := range k.Eqs {
		n += len(e.prog)
	}
	return n
}

// BindSyms builds the scalar binding vector from a name->value map,
// erroring on missing entries.
func (k *Kernel) BindSyms(vals map[string]float64) ([]float64, error) {
	out := make([]float64, len(k.SymNames))
	for i, n := range k.SymNames {
		v, ok := vals[n]
		if !ok {
			return nil, fmt.Errorf("runtime: unbound scalar symbol %q", n)
		}
		out[i] = v
	}
	return out, nil
}
