package runtime

import (
	"fmt"

	"devigo/internal/field"
)

// Rebind returns a copy of the kernel executing against different storage:
// every referenced field is re-resolved by name from fields, while the
// compiled per-point programs, slots and symbol table are shared with the
// receiver (they are immutable after compilation, and Run resolves strides
// and buffer pointers from the bound fields on every call, so the copy is
// safe to run concurrently with the original). This is the interpreter
// engine's half of the operator cache's reuse path — see the bytecode
// package's Rebind for the service-level rationale.
//
// The replacement fields must cover every name the kernel references and
// agree on the local domain shape, mirroring the compile-time validation.
func (k *Kernel) Rebind(fields map[string]*field.Function) (*Kernel, error) {
	nk := *k
	nk.Fields = make([]*field.Function, len(k.Fields))
	for i, name := range k.names {
		f, ok := fields[name]
		if !ok {
			return nil, fmt.Errorf("runtime: Rebind: no storage registered for field %q", name)
		}
		nk.Fields[i] = f
	}
	for i := 1; i < len(nk.Fields); i++ {
		for d := range nk.Fields[0].LocalShape {
			if nk.Fields[i].LocalShape[d] != nk.Fields[0].LocalShape[d] {
				return nil, fmt.Errorf("runtime: Rebind: fields %s and %s disagree on local shape",
					k.names[0], k.names[i])
			}
		}
	}
	// A private dispatch state keeps the copy concurrency-safe against the
	// original (the opcache runs rebound kernels across shots in parallel).
	nk.st = newRunState(&nk)
	return &nk, nil
}
