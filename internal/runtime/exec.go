package runtime

import (
	"sync"
)

// stackCap bounds expression depth; TTI kernels stay far below this.
const stackCap = 256

// tempCap bounds the per-point CSE temporary register file.
const tempCap = 512

// ExecOpts tunes kernel execution.
type ExecOpts struct {
	// Workers is the number of parallel workers (simulated OpenMP
	// threads); <=1 runs sequentially.
	Workers int
	// TileRows is the number of outer-dimension rows per tile; the
	// Progress hook runs between tiles. <=0 disables tiling (one tile).
	TileRows int
	// Progress is prodded between tiles (full mode's MPI_Test call site).
	Progress func()
}

// Box is a half-open iteration box in domain-relative coordinates
// (0 = first owned point per dimension).
type Box struct {
	Lo, Hi []int
}

// Size returns the point count of the box.
func (b Box) Size() int {
	n := 1
	for d := range b.Lo {
		e := b.Hi[d] - b.Lo[d]
		if e <= 0 {
			return 0
		}
		n *= e
	}
	return n
}

// Empty reports whether the box has no points.
func (b Box) Empty() bool { return b.Size() == 0 }

// Run executes every equation of the kernel at every point of the box for
// logical timestep t, with scalars bound via syms (from BindSyms). Points
// run in row-major order; equations run in program order at each point.
func (k *Kernel) Run(t int, b Box, syms []float64, opts *ExecOpts) {
	if b.Empty() {
		return
	}
	workers, tileRows := 1, 0
	var progress func()
	if opts != nil {
		if opts.Workers > 1 {
			workers = opts.Workers
		}
		tileRows = opts.TileRows
		progress = opts.Progress
	}
	// Resolve per-(field,timeOff) data slices — and each slot's flat
	// stencil displacement against the field's *current* strides — once per
	// step, so ghost-storage reallocation between steps is transparent.
	slotData := make([][]float32, len(k.slots))
	slotOff := make([]int, len(k.slots))
	for i, s := range k.slots {
		f := k.Fields[s.fieldIdx]
		slotData[i] = f.Buf(t + s.timeOff).Data
		flat := 0
		for d := 0; d < len(b.Lo); d++ {
			flat += s.off[d] * f.Bufs[0].Strides[d]
		}
		slotOff[i] = flat
	}
	outData := make([][]float32, len(k.Eqs))
	for i, e := range k.Eqs {
		outData[i] = k.Fields[e.outField].Buf(t + e.outTimeOff).Data
	}

	nd := len(b.Lo)
	outer := b.Hi[0] - b.Lo[0]
	if tileRows <= 0 || tileRows > outer {
		tileRows = outer
	}
	type tile struct{ lo, hi int }
	var tiles []tile
	for lo := b.Lo[0]; lo < b.Hi[0]; lo += tileRows {
		hi := lo + tileRows
		if hi > b.Hi[0] {
			hi = b.Hi[0]
		}
		tiles = append(tiles, tile{lo, hi})
	}

	runTile := func(tl tile) {
		// Odometer over dims 0..nd-2 within the tile; innermost dim is the
		// contiguous row.
		idx := make([]int, nd)
		copy(idx, b.Lo)
		idx[0] = tl.lo
		bases := make([]int, len(k.Fields))
		rowLen := b.Hi[nd-1] - b.Lo[nd-1]
		if nd == 1 {
			// Dim 0 is both the tiled and the contiguous dimension.
			rowLen = tl.hi - tl.lo
		}
		var stack [stackCap]float64
		var temps [tempCap]float64
		exec := func(e *CompiledEq, x int) float64 {
			sp := 0
			for pi := range e.prog {
				in := &e.prog[pi]
				switch in.op {
				case opConst:
					stack[sp] = in.v
					sp++
				case opSym:
					stack[sp] = syms[in.a]
					sp++
				case opTemp:
					stack[sp] = temps[in.a]
					sp++
				case opLoad:
					s := &k.slots[in.a]
					stack[sp] = float64(slotData[in.a][bases[s.fieldIdx]+x+slotOff[in.a]])
					sp++
				case opAdd:
					n := in.a
					acc := stack[sp-n]
					for j := sp - n + 1; j < sp; j++ {
						acc += stack[j]
					}
					sp -= n - 1
					stack[sp-1] = acc
				case opMul:
					n := in.a
					acc := stack[sp-n]
					for j := sp - n + 1; j < sp; j++ {
						acc *= stack[j]
					}
					sp -= n - 1
					stack[sp-1] = acc
				case opPow:
					v := stack[sp-1]
					stack[sp-1] = ipow(v, in.a)
				}
			}
			return stack[0]
		}
		for {
			// Row start base per field (domain-relative -> buffer index).
			for fi, f := range k.Fields {
				base := 0
				for d := 0; d < nd; d++ {
					base += (idx[d] + f.Halo[d]) * f.Bufs[0].Strides[d]
				}
				bases[fi] = base
			}
			for x := 0; x < rowLen; x++ {
				for ti := range k.Temps {
					temps[ti] = exec(&k.Temps[ti], x)
				}
				for ei := range k.Eqs {
					e := &k.Eqs[ei]
					outData[ei][bases[e.outField]+x] = float32(exec(e, x))
				}
			}
			// Advance the odometer over dims nd-2 .. 0 (dim 0 bounded by
			// the tile).
			d := nd - 2
			for ; d >= 0; d-- {
				idx[d]++
				limit := b.Hi[d]
				if d == 0 {
					limit = tl.hi
				}
				if idx[d] < limit {
					break
				}
				if d == 0 {
					break
				}
				idx[d] = b.Lo[d]
			}
			if d < 0 {
				// 1-D box: single row done.
				break
			}
			if d == 0 && idx[0] >= tl.hi {
				break
			}
		}
	}

	// slotData is indexed per slot, but opLoad uses in.a as both slot and
	// data index; they are the same by construction above.
	if workers <= 1 {
		for _, tl := range tiles {
			runTile(tl)
			if progress != nil {
				progress()
			}
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan tile, len(tiles))
	for _, tl := range tiles {
		work <- tl
	}
	close(work)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(isFirst bool) {
			defer wg.Done()
			for tl := range work {
				runTile(tl)
				// One worker doubles as the progress engine, mirroring the
				// sacrificed OpenMP thread of the paper's full mode.
				if isFirst && progress != nil {
					progress()
				}
			}
		}(wkr == 0)
	}
	wg.Wait()
}

func ipow(v float64, e int) float64 {
	if e == 0 {
		return 1
	}
	neg := e < 0
	if neg {
		e = -e
	}
	out := 1.0
	for i := 0; i < e; i++ {
		out *= v
	}
	if neg {
		return 1 / out
	}
	return out
}
