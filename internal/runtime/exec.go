package runtime

import (
	"sync"
)

// stackCap bounds expression depth; TTI kernels stay far below this.
const stackCap = 256

// tempCap bounds the per-point CSE temporary register file.
const tempCap = 512

// ExecOpts tunes kernel execution.
type ExecOpts struct {
	// Workers is the number of parallel workers (simulated OpenMP
	// threads); <=1 runs sequentially. Ignored when Pool is set (the pool
	// knows its own team size).
	Workers int
	// TileRows is the number of outer-dimension rows per tile; the
	// Progress hook runs between tiles. <=0 disables tiling (one tile).
	TileRows int
	// Progress is prodded between tiles (full mode's MPI_Test call site).
	Progress func()
	// Pool, when non-nil with more than one worker, dispatches tiles to
	// the persistent worker team instead of forking goroutines per call.
	// Workers > 1 with a nil Pool keeps the legacy fork-join dispatch —
	// the baseline devigo-bench's hybrid experiment compares against.
	Pool *Pool
	// Steal lets pool workers that drain their static block-cyclic stripe
	// claim other workers' remaining tiles. The operator enables it only
	// for the shrinking time-tile shell sweeps.
	Steal bool
}

// Box is a half-open iteration box in domain-relative coordinates
// (0 = first owned point per dimension).
type Box struct {
	Lo, Hi []int
}

// Size returns the point count of the box.
func (b Box) Size() int {
	n := 1
	for d := range b.Lo {
		e := b.Hi[d] - b.Lo[d]
		if e <= 0 {
			return 0
		}
		n *= e
	}
	return n
}

// Empty reports whether the box has no points.
func (b Box) Empty() bool { return b.Size() == 0 }

// TileBounds maps a tile index to its half-open outer-dimension row band.
// Shared by every engine so the tile decomposition — and therefore the
// pool's static block-cyclic ownership — is identical across engines.
func TileBounds(b Box, tile, tileRows int) (lo, hi int) {
	lo = b.Lo[0] + tile*tileRows
	hi = lo + tileRows
	if hi > b.Hi[0] {
		hi = b.Hi[0]
	}
	return lo, hi
}

// TileCount is the number of tileRows-row bands covering the box's outer
// dimension.
func TileCount(b Box, tileRows int) int {
	return (b.Hi[0] - b.Lo[0] + tileRows - 1) / tileRows
}

// irScratch is one worker's private evaluation state: the odometer, the
// per-field row bases, the expression stack and the CSE temporaries.
// Allocated once per worker and reused across tiles and timesteps.
type irScratch struct {
	idx   []int
	bases []int
	stack [stackCap]float64
	temps [tempCap]float64
}

// runState is the kernel's reusable dispatch state, allocated eagerly at
// compile/Rebind time so the steady-state Run path performs no heap
// allocation. Slice *contents* are refilled every Run (buffer rotation
// makes the t-dependent data pointers change per step); the backing
// arrays persist. Rebind installs a fresh runState in the copy, so
// rebound kernels stay safe to run concurrently with the original.
type runState struct {
	task     irTask
	slotData [][]float32
	slotOff  []int
	outData  [][]float32
	ws       []*irScratch
}

func newRunState(k *Kernel) *runState {
	return &runState{
		slotData: make([][]float32, len(k.slots)),
		slotOff:  make([]int, len(k.slots)),
		outData:  make([][]float32, len(k.Eqs)),
	}
}

// refill resolves the per-(field,timeOff) data slices — and each slot's
// flat stencil displacement against the field's *current* strides — once
// per Run, so buffer rotation and ghost-storage reallocation between
// steps stay transparent without re-deriving any geometry.
func (st *runState) refill(k *Kernel, t int, b Box) {
	for i, s := range k.slots {
		f := k.Fields[s.fieldIdx]
		st.slotData[i] = f.Buf(t + s.timeOff).Data
		flat := 0
		for d := 0; d < len(b.Lo); d++ {
			flat += s.off[d] * f.Bufs[0].Strides[d]
		}
		st.slotOff[i] = flat
	}
	for i, e := range k.Eqs {
		st.outData[i] = k.Fields[e.outField].Buf(t + e.outTimeOff).Data
	}
}

// ensureScratch grows the per-worker scratch table to `workers` entries.
// Called from the single-threaded dispatch prologue only, never from
// workers, so the pool path indexes a stable table.
func (st *runState) ensureScratch(workers, nd, nf int) {
	for len(st.ws) < workers {
		st.ws = append(st.ws, &irScratch{idx: make([]int, nd), bases: make([]int, nf)})
	}
}

// irTask adapts one Run invocation to the pool's Task contract. It lives
// inside the kernel's runState so handing it to the pool converts a
// pointer to an interface without allocating.
type irTask struct {
	k        *Kernel
	b        Box
	syms     []float64
	tileRows int
}

// RunTile executes one row band with worker w's scratch.
func (tk *irTask) RunTile(w, tile int) {
	lo, hi := TileBounds(tk.b, tile, tk.tileRows)
	tk.k.sweepTile(tk.k.st.ws[w], tk.b, lo, hi, tk.syms)
}

// Run executes every equation of the kernel at every point of the box for
// logical timestep t, with scalars bound via syms (from BindSyms). Points
// run in row-major order; equations run in program order at each point.
// Tiles are disjoint row bands, so results are bit-identical for every
// worker count and dispatch mode.
func (k *Kernel) Run(t int, b Box, syms []float64, opts *ExecOpts) {
	if b.Empty() {
		return
	}
	workers, tileRows := 1, 0
	var progress func()
	var pool *Pool
	steal := false
	if opts != nil {
		if opts.Workers > 1 {
			workers = opts.Workers
		}
		tileRows = opts.TileRows
		progress = opts.Progress
		if opts.Pool != nil && opts.Pool.Workers() > 1 {
			pool = opts.Pool
			workers = pool.Workers()
		}
		steal = opts.Steal
	}
	outer := b.Hi[0] - b.Lo[0]
	if tileRows <= 0 || tileRows > outer {
		tileRows = outer
	}
	ntiles := TileCount(b, tileRows)
	nd := len(b.Lo)

	st := k.st
	st.refill(k, t, b)
	st.ensureScratch(workers, nd, len(k.Fields))

	if pool != nil {
		st.task = irTask{k: k, b: b, syms: syms, tileRows: tileRows}
		pool.Run(&st.task, ntiles, t, steal, progress)
		return
	}
	if workers <= 1 {
		for tile := 0; tile < ntiles; tile++ {
			lo, hi := TileBounds(b, tile, tileRows)
			k.sweepTile(st.ws[0], b, lo, hi, syms)
			if progress != nil {
				progress()
			}
		}
		return
	}
	k.forkJoinRun(b, syms, workers, ntiles, tileRows, nd, progress)
}

// forkJoinRun is the legacy fork-join dispatch: fresh goroutines, a tile
// channel and per-goroutine scratch on every call. Kept selectable (nil
// Pool) as the overhead baseline the persistent pool is benchmarked
// against. Split out of Run so its goroutine closure does not force heap
// allocation of Run's locals on the (alloc-free) pool and serial paths.
func (k *Kernel) forkJoinRun(b Box, syms []float64, workers, ntiles, tileRows, nd int, progress func()) {
	var wg sync.WaitGroup
	work := make(chan int, ntiles)
	for i := 0; i < ntiles; i++ {
		work <- i
	}
	close(work)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(isFirst bool) {
			defer wg.Done()
			sc := &irScratch{idx: make([]int, nd), bases: make([]int, len(k.Fields))}
			for tile := range work {
				lo, hi := TileBounds(b, tile, tileRows)
				k.sweepTile(sc, b, lo, hi, syms)
				// One worker doubles as the progress engine, mirroring the
				// sacrificed OpenMP thread of the paper's full mode.
				if isFirst && progress != nil {
					progress()
				}
			}
		}(wkr == 0)
	}
	wg.Wait()
}

// evalEq evaluates one compiled equation at row offset x with worker
// scratch sc. slotData is indexed per slot, but opLoad uses in.a as both
// slot and data index; they are the same by construction in refill.
func (k *Kernel) evalEq(sc *irScratch, e *CompiledEq, x int, syms []float64) float64 {
	st := k.st
	sp := 0
	for pi := range e.prog {
		in := &e.prog[pi]
		switch in.op {
		case opConst:
			sc.stack[sp] = in.v
			sp++
		case opSym:
			sc.stack[sp] = syms[in.a]
			sp++
		case opTemp:
			sc.stack[sp] = sc.temps[in.a]
			sp++
		case opLoad:
			s := &k.slots[in.a]
			sc.stack[sp] = float64(st.slotData[in.a][sc.bases[s.fieldIdx]+x+st.slotOff[in.a]])
			sp++
		case opAdd:
			n := in.a
			acc := sc.stack[sp-n]
			for j := sp - n + 1; j < sp; j++ {
				acc += sc.stack[j]
			}
			sp -= n - 1
			sc.stack[sp-1] = acc
		case opMul:
			n := in.a
			acc := sc.stack[sp-n]
			for j := sp - n + 1; j < sp; j++ {
				acc *= sc.stack[j]
			}
			sp -= n - 1
			sc.stack[sp-1] = acc
		case opPow:
			v := sc.stack[sp-1]
			sc.stack[sp-1] = ipow(v, in.a)
		}
	}
	return sc.stack[0]
}

// sweepTile executes rows [lo,hi) of the box's outer dimension with
// worker scratch sc: an odometer over dims 0..nd-2, the innermost dim as
// the contiguous row.
func (k *Kernel) sweepTile(sc *irScratch, b Box, lo, hi int, syms []float64) {
	st := k.st
	nd := len(b.Lo)
	idx := sc.idx[:nd]
	copy(idx, b.Lo)
	idx[0] = lo
	bases := sc.bases[:len(k.Fields)]
	rowLen := b.Hi[nd-1] - b.Lo[nd-1]
	if nd == 1 {
		// Dim 0 is both the tiled and the contiguous dimension.
		rowLen = hi - lo
	}
	for {
		// Row start base per field (domain-relative -> buffer index).
		for fi, f := range k.Fields {
			base := 0
			for d := 0; d < nd; d++ {
				base += (idx[d] + f.Halo[d]) * f.Bufs[0].Strides[d]
			}
			bases[fi] = base
		}
		for x := 0; x < rowLen; x++ {
			for ti := range k.Temps {
				sc.temps[ti] = k.evalEq(sc, &k.Temps[ti], x, syms)
			}
			for ei := range k.Eqs {
				e := &k.Eqs[ei]
				st.outData[ei][bases[e.outField]+x] = float32(k.evalEq(sc, e, x, syms))
			}
		}
		// Advance the odometer over dims nd-2 .. 0 (dim 0 bounded by the
		// tile).
		d := nd - 2
		for ; d >= 0; d-- {
			idx[d]++
			limit := b.Hi[d]
			if d == 0 {
				limit = hi
			}
			if idx[d] < limit {
				break
			}
			if d == 0 {
				break
			}
			idx[d] = b.Lo[d]
		}
		if d < 0 {
			// 1-D box: single row done.
			break
		}
		if d == 0 && idx[0] >= hi {
			break
		}
	}
}

func ipow(v float64, e int) float64 {
	if e == 0 {
		return 1
	}
	neg := e < 0
	if neg {
		e = -e
	}
	out := 1.0
	for i := 0; i < e; i++ {
		out *= v
	}
	if neg {
		return 1 / out
	}
	return out
}
