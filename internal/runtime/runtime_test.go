package runtime

import (
	"math"
	"testing"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/ir"
	"devigo/internal/symbolic"
)

// buildDiffusion compiles the Listing-1 diffusion update over a given grid.
func buildDiffusion(t *testing.T, g *grid.Grid, so int) (*Kernel, *field.TimeFunction) {
	t.Helper()
	u, err := field.NewTimeFunction("u", g, so, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	eq := symbolic.Eq{LHS: symbolic.Dt(symbolic.At(u.Ref), 1), RHS: symbolic.Laplace(symbolic.At(u.Ref), g.NDims(), so)}
	sol, err := symbolic.Solve(eq, symbolic.ForwardStencil(u.Ref))
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := ir.Lower([]symbolic.Eq{{LHS: symbolic.ForwardStencil(u.Ref), RHS: sol}}, g.NDims())
	if err != nil {
		t.Fatal(err)
	}
	k, err := CompileCluster(clusters[0], map[string]*field.Function{"u": &u.Function})
	if err != nil {
		t.Fatal(err)
	}
	return k, u
}

func fullDomainBox(f *field.Function) Box {
	nd := f.NDims()
	b := Box{Lo: make([]int, nd), Hi: make([]int, nd)}
	copy(b.Hi, f.LocalShape)
	return b
}

func TestKernelMatchesSymbolicEval(t *testing.T) {
	// The VM must agree with the reference symbolic evaluator at interior
	// points.
	g := grid.MustNew([]int{8, 8}, []float64{7, 7})
	k, u := buildDiffusion(t, g, 2)
	// Initialise u[t=0] with a deterministic pattern over the full buffer
	// (domain + halo) so stencils at the domain edge read known values.
	buf := u.Buf(0)
	for i := range buf.Data {
		buf.Data[i] = float32(i%17) * 0.25
	}
	syms, err := k.BindSyms(map[string]float64{"dt": 0.1, "h_x": 1, "h_y": 1})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(0, fullDomainBox(&u.Function), syms, nil)

	// Reference: evaluate the lowered RHS with symbolic.Eval.
	eqRHS := func(i, j int) float64 {
		env := &symbolic.Env{
			Syms: map[string]float64{"dt": 0.1, "h_x": 1, "h_y": 1},
			Field: func(fun *symbolic.FuncRef, timeOff int, off []int) float64 {
				return float64(u.Buf(timeOff).At(i+off[0]+u.Halo[0], j+off[1]+u.Halo[1]))
			},
		}
		eq := symbolic.Eq{LHS: symbolic.Dt(symbolic.At(u.Ref), 1), RHS: symbolic.Laplace(symbolic.At(u.Ref), 2, 2)}
		sol, _ := symbolic.Solve(eq, symbolic.ForwardStencil(u.Ref))
		return symbolic.Eval(sol, env)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := eqRHS(i, j)
			got := float64(u.AtDomain(1, i, j))
			if math.Abs(got-want) > 1e-5*math.Max(1, math.Abs(want)) {
				t.Fatalf("(%d,%d): VM=%g ref=%g", i, j, got, want)
			}
		}
	}
}

func TestKernelConservesDiffusionMass(t *testing.T) {
	// With periodic-like closed boundaries unavailable, use an interior
	// bump far from the boundary: one explicit Euler step conserves the
	// sum of u over the full buffer (Laplacian weights sum to zero).
	g := grid.MustNew([]int{16, 16}, []float64{15, 15})
	k, u := buildDiffusion(t, g, 2)
	u.SetDomain(0, 8, 8, 8)
	sum0 := 0.0
	for _, v := range u.Buf(0).Data {
		sum0 += float64(v)
	}
	syms, _ := k.BindSyms(map[string]float64{"dt": 0.1, "h_x": 1, "h_y": 1})
	// Interior box only, so no flux crosses the domain edge.
	b := Box{Lo: []int{4, 4}, Hi: []int{12, 12}}
	k.Run(0, b, syms, nil)
	sum1 := 0.0
	for _, v := range u.Buf(1).Data {
		sum1 += float64(v)
	}
	if math.Abs(sum1-sum0) > 1e-4 {
		t.Errorf("mass not conserved: %g -> %g", sum0, sum1)
	}
}

func TestTiledAndParallelMatchSequential(t *testing.T) {
	g := grid.MustNew([]int{20, 12}, []float64{19, 11})
	mk := func() (*Kernel, *field.TimeFunction) { return buildDiffusion(t, g, 4) }
	init := func(u *field.TimeFunction) {
		buf := u.Buf(0)
		for i := range buf.Data {
			buf.Data[i] = float32((i*7)%23) * 0.5
		}
	}
	symsOf := func(k *Kernel) []float64 {
		s, err := k.BindSyms(map[string]float64{"dt": 0.05, "h_x": 1, "h_y": 1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	kSeq, uSeq := mk()
	init(uSeq)
	kSeq.Run(0, fullDomainBox(&uSeq.Function), symsOf(kSeq), nil)

	progressCalls := 0
	kTile, uTile := mk()
	init(uTile)
	kTile.Run(0, fullDomainBox(&uTile.Function), symsOf(kTile), &ExecOpts{
		TileRows: 3,
		Progress: func() { progressCalls++ },
	})
	if progressCalls == 0 {
		t.Error("progress hook never prodded")
	}

	kPar, uPar := mk()
	init(uPar)
	kPar.Run(0, fullDomainBox(&uPar.Function), symsOf(kPar), &ExecOpts{Workers: 4, TileRows: 2})

	for i := range uSeq.Buf(1).Data {
		if uSeq.Buf(1).Data[i] != uTile.Buf(1).Data[i] {
			t.Fatalf("tiled diverges at %d", i)
		}
		if uSeq.Buf(1).Data[i] != uPar.Buf(1).Data[i] {
			t.Fatalf("parallel diverges at %d", i)
		}
	}
}

func TestKernel3D(t *testing.T) {
	g := grid.MustNew([]int{6, 5, 4}, nil)
	k, u := buildDiffusion(t, g, 2)
	u.SetDomain(0, 1, 3, 2, 2)
	syms, _ := k.BindSyms(map[string]float64{"dt": 0.05, "h_x": 1, "h_y": 1, "h_z": 1})
	k.Run(0, fullDomainBox(&u.Function), syms, nil)
	// The bump spreads to the 6 face neighbours with weight dt/h^2.
	want := float32(0.05)
	if got := u.AtDomain(1, 2, 2, 2); got != want {
		t.Errorf("neighbour = %v, want %v", got, want)
	}
	center := u.AtDomain(1, 3, 2, 2)
	if math.Abs(float64(center-(1-6*0.05))) > 1e-6 {
		t.Errorf("centre = %v, want %v", center, 1-6*0.05)
	}
}

func TestKernel1D(t *testing.T) {
	g := grid.MustNew([]int{32}, nil)
	k, u := buildDiffusion(t, g, 2)
	u.SetDomain(0, 1, 16)
	syms, _ := k.BindSyms(map[string]float64{"dt": 0.1, "h_x": 1})
	k.Run(0, fullDomainBox(&u.Function), syms, &ExecOpts{TileRows: 5})
	if got := u.AtDomain(1, 15); got != 0.1 {
		t.Errorf("1-D neighbour = %v, want 0.1", got)
	}
	if got := u.AtDomain(1, 16); got != 0.8 {
		t.Errorf("1-D centre = %v, want 0.8", got)
	}
}

func TestMultiEquationClusterPointOrdering(t *testing.T) {
	// Two equations where the second reads the first's output at the same
	// point: per-point execution order must make the new value visible.
	g := grid.MustNew([]int{4}, nil)
	a, _ := field.NewTimeFunction("a", g, 2, 1, nil)
	bfld, _ := field.NewTimeFunction("b", g, 2, 1, nil)
	eq1 := symbolic.Eq{LHS: symbolic.ForwardStencil(a.Ref), RHS: symbolic.NewAdd(symbolic.At(a.Ref), symbolic.Int(1))}
	eq2 := symbolic.Eq{LHS: symbolic.ForwardStencil(bfld.Ref), RHS: symbolic.NewMul(symbolic.Int(2), symbolic.ForwardStencil(a.Ref))}
	clusters, err := ir.Lower([]symbolic.Eq{eq1, eq2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("expected fusion, got %d clusters", len(clusters))
	}
	k, err := CompileCluster(clusters[0], map[string]*field.Function{"a": &a.Function, "b": &bfld.Function})
	if err != nil {
		t.Fatal(err)
	}
	syms, _ := k.BindSyms(nil)
	k.Run(0, fullDomainBox(&a.Function), syms, nil)
	if got := bfld.AtDomain(1, 2); got != 2 {
		t.Errorf("b = %v, want 2 (reads a[t+1] = 1)", got)
	}
}

func TestCompileMissingFieldErrors(t *testing.T) {
	g := grid.MustNew([]int{4}, nil)
	u, _ := field.NewTimeFunction("u", g, 2, 1, nil)
	eq := symbolic.Eq{LHS: symbolic.ForwardStencil(u.Ref), RHS: symbolic.At(u.Ref)}
	clusters, _ := ir.Lower([]symbolic.Eq{eq}, 1)
	if _, err := CompileCluster(clusters[0], map[string]*field.Function{}); err == nil {
		t.Error("missing storage should error")
	}
}

func TestBindSymsMissingErrors(t *testing.T) {
	g := grid.MustNew([]int{8, 8}, nil)
	k, _ := buildDiffusion(t, g, 2)
	if _, err := k.BindSyms(map[string]float64{"dt": 0.1}); err == nil {
		t.Error("missing h_x binding should error")
	}
}

func TestIpow(t *testing.T) {
	cases := []struct {
		v    float64
		e    int
		want float64
	}{
		{2, 3, 8}, {2, -1, 0.5}, {5, 0, 1}, {3, -2, 1.0 / 9},
	}
	for _, c := range cases {
		if got := ipow(c.v, c.e); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ipow(%v,%d) = %v, want %v", c.v, c.e, got, c.want)
		}
	}
}

func TestEmptyBoxNoOp(t *testing.T) {
	g := grid.MustNew([]int{8, 8}, nil)
	k, u := buildDiffusion(t, g, 2)
	syms, _ := k.BindSyms(map[string]float64{"dt": 0.1, "h_x": 1, "h_y": 1})
	k.Run(0, Box{Lo: []int{4, 4}, Hi: []int{4, 8}}, syms, nil)
	for _, v := range u.Buf(1).Data {
		if v != 0 {
			t.Fatal("empty box must not write")
		}
	}
}

func TestBoxEdgeCases(t *testing.T) {
	// Size/Empty on degenerate boxes.
	cases := []struct {
		box  Box
		size int
	}{
		{Box{Lo: []int{0, 0}, Hi: []int{0, 5}}, 0},    // zero extent
		{Box{Lo: []int{3, 2}, Hi: []int{1, 5}}, 0},    // inverted
		{Box{Lo: []int{0}, Hi: []int{7}}, 7},          // 1-D
		{Box{Lo: []int{-2, -2}, Hi: []int{2, 2}}, 16}, // CIRE-extended
	}
	for _, c := range cases {
		if got := c.box.Size(); got != c.size {
			t.Errorf("Size(%v) = %d, want %d", c.box, got, c.size)
		}
		if c.box.Empty() != (c.size == 0) {
			t.Errorf("Empty(%v) inconsistent with Size", c.box)
		}
	}
}

func TestTileLargerThanOuterDim(t *testing.T) {
	// A TileRows beyond the outer extent must clamp to one tile and still
	// update every point exactly once.
	g := grid.MustNew([]int{5, 9}, nil)
	kBig, uBig := buildDiffusion(t, g, 2)
	kRef, uRef := buildDiffusion(t, g, 2)
	init := func(u *field.TimeFunction) {
		buf := u.Buf(0)
		for i := range buf.Data {
			buf.Data[i] = float32((i*3)%11) * 0.5
		}
	}
	init(uBig)
	init(uRef)
	vals := map[string]float64{"dt": 0.1, "h_x": 1, "h_y": 1}
	symsBig, _ := kBig.BindSyms(vals)
	symsRef, _ := kRef.BindSyms(vals)
	kBig.Run(0, fullDomainBox(&uBig.Function), symsBig, &ExecOpts{TileRows: 1 << 20})
	kRef.Run(0, fullDomainBox(&uRef.Function), symsRef, nil)
	for i := range uRef.Buf(1).Data {
		if uBig.Buf(1).Data[i] != uRef.Buf(1).Data[i] {
			t.Fatalf("oversized tile diverges at %d", i)
		}
	}
}

func TestFlopsPerPointMatchesCluster(t *testing.T) {
	g := grid.MustNew([]int{8, 8}, nil)
	k, _ := buildDiffusion(t, g, 8)
	if k.FlopsPerPoint() < 20 {
		t.Errorf("SDO-8 diffusion flops = %d, suspiciously low", k.FlopsPerPoint())
	}
}
