package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"devigo/internal/grid"
)

// recordTask records, per tile, how many times it ran and which worker
// ran it. Each tile is claimed by exactly one atomic increment, so the
// owner slots are written at most once per dispatch (re-verified by the
// hits counter).
type recordTask struct {
	hits  []atomic.Int32
	owner []atomic.Int32
	// slowWorker, when >= 0, makes that worker sleep on every tile it
	// executes so the others drain and steal its stripe.
	slowWorker int
}

func newRecordTask(ntiles int) *recordTask {
	return &recordTask{
		hits:       make([]atomic.Int32, ntiles),
		owner:      make([]atomic.Int32, ntiles),
		slowWorker: -1,
	}
}

func (rt *recordTask) RunTile(w, tile int) {
	if w == rt.slowWorker {
		time.Sleep(200 * time.Microsecond)
	}
	rt.hits[tile].Add(1)
	rt.owner[tile].Store(int32(w))
}

func (rt *recordTask) check(t *testing.T, ntiles int) {
	t.Helper()
	for i := 0; i < ntiles; i++ {
		if got := rt.hits[i].Load(); got != 1 {
			t.Fatalf("tile %d ran %d times, want exactly once", i, got)
		}
	}
}

func TestPoolCoversAllTilesExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, ntiles := range []int{1, 2, 7, 13, 64} {
			for _, steal := range []bool{false, true} {
				p := NewPool(workers, 0)
				rt := newRecordTask(ntiles)
				p.Run(rt, ntiles, 0, steal, nil)
				rt.check(t, ntiles)
				p.Close()
			}
		}
	}
}

func TestPoolStaticPartitionIsDeterministic(t *testing.T) {
	// Without stealing, tile i must run on its static owner i % W — the
	// locality contract: worker w touches the same rows every dispatch.
	const workers, ntiles = 4, 23
	p := NewPool(workers, 0)
	defer p.Close()
	for step := 0; step < 5; step++ {
		rt := newRecordTask(ntiles)
		p.Run(rt, ntiles, step, false, nil)
		rt.check(t, ntiles)
		for i := 0; i < ntiles; i++ {
			if got := int(rt.owner[i].Load()); got != i%workers {
				t.Fatalf("step %d tile %d ran on worker %d, want static owner %d",
					step, i, got, i%workers)
			}
		}
	}
}

func TestPoolStealRebalancesSlowWorker(t *testing.T) {
	// Worker 1 sleeps on every tile it executes; with stealing enabled
	// the fast workers must claim its leftover stripe. Coverage stays
	// exactly-once because each claim is a single atomic increment.
	const workers, ntiles = 4, 32
	p := NewPool(workers, 0)
	defer p.Close()
	rt := newRecordTask(ntiles)
	rt.slowWorker = 1
	p.Run(rt, ntiles, 0, true, nil)
	rt.check(t, ntiles)
	if st := p.Stats(); st.Steals == 0 {
		t.Fatalf("no steals recorded; stats=%+v", st)
	}
	stolen := 0
	for i := 1; i < ntiles; i += workers {
		if int(rt.owner[i].Load()) != 1 {
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("every tile of the slow worker's stripe still ran on worker 1")
	}
}

func TestPoolDispatchAllocs(t *testing.T) {
	// The tentpole contract: a steady-state dispatch allocates nothing —
	// no goroutines, channels or closures per step.
	p := NewPool(4, 0)
	defer p.Close()
	rt := newRecordTask(16)
	p.Run(rt, 16, 0, false, nil) // warm
	for _, steal := range []bool{false, true} {
		steal := steal
		if avg := testing.AllocsPerRun(50, func() {
			p.Run(rt, 16, 1, steal, nil)
		}); avg != 0 {
			t.Errorf("steal=%v: dispatch allocates %.1f objects/run, want 0", steal, avg)
		}
	}
}

func TestPoolProgressRunsOnCaller(t *testing.T) {
	// progress is the full-mode overlap hook: prodded by worker 0 between
	// its tiles and once before the join. It runs only on the calling
	// goroutine, so a plain counter is race-free.
	const workers, ntiles = 4, 16
	p := NewPool(workers, 0)
	defer p.Close()
	rt := newRecordTask(ntiles)
	calls := 0
	p.Run(rt, ntiles, 0, false, func() { calls++ })
	// Worker 0 owns ceil(16/4) = 4 tiles, plus the pre-join prod; steals
	// would only add calls, so the floor is 5.
	if calls < 5 {
		t.Fatalf("progress called %d times, want >= 5", calls)
	}
}

func TestPoolInlineFallbacks(t *testing.T) {
	// nil pool, single-worker pool, single-tile dispatch, and a closed
	// pool all execute inline on the caller with full coverage.
	cases := []struct {
		name string
		pool *Pool
	}{
		{"nil", nil},
		{"single-worker", NewPool(1, 0)},
		{"closed", func() *Pool { p := NewPool(4, 0); p.Close(); return p }()},
	}
	for _, tc := range cases {
		rt := newRecordTask(8)
		tc.pool.Run(rt, 8, 0, true, nil)
		rt.check(t, 8)
		for i := 0; i < 8; i++ {
			if got := int(rt.owner[i].Load()); got != 0 {
				t.Fatalf("%s: tile %d ran on worker %d, want caller (0)", tc.name, i, got)
			}
		}
	}
	// ntiles <= 1 also stays inline even on a live team.
	p := NewPool(4, 0)
	defer p.Close()
	rt := newRecordTask(1)
	p.Run(rt, 1, 0, false, nil)
	rt.check(t, 1)
	if got := int(rt.owner[0].Load()); got != 0 {
		t.Fatalf("single tile ran on worker %d, want caller (0)", got)
	}
}

func TestPoolNilAndCloseSemantics(t *testing.T) {
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
	if st := nilPool.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil pool Stats() = %+v, want zero", st)
	}
	if got := nilPool.SyncCost(); got != 0 {
		t.Fatalf("nil pool SyncCost() = %g, want 0", got)
	}
	nilPool.Close() // must not panic

	p := NewPool(3, 2)
	if p.Workers() != 3 || p.Rank() != 2 || p.Closed() {
		t.Fatalf("fresh pool: workers=%d rank=%d closed=%v", p.Workers(), p.Rank(), p.Closed())
	}
	p.Close()
	p.Close() // idempotent
	if !p.Closed() {
		t.Fatal("pool not closed after Close")
	}
}

func TestPoolStatsAccumulate(t *testing.T) {
	p := NewPool(2, 0)
	defer p.Close()
	rt := newRecordTask(8)
	before := p.Stats()
	p.Run(rt, 8, 0, false, nil)
	p.Run(rt, 8, 1, false, nil)
	st := p.Stats()
	if st.Dispatches-before.Dispatches != 2 {
		t.Fatalf("dispatches delta = %d, want 2", st.Dispatches-before.Dispatches)
	}
	if st.SyncNs < before.SyncNs {
		t.Fatal("SyncNs went backwards")
	}
}

func TestPoolSyncCostMeasuredAndCached(t *testing.T) {
	p := NewPool(2, 0)
	defer p.Close()
	c1 := p.SyncCost()
	if c1 <= 0 {
		t.Fatalf("SyncCost() = %g, want > 0 for a multi-worker pool", c1)
	}
	if c2 := p.SyncCost(); c2 != c1 {
		t.Fatalf("SyncCost not cached: %g then %g", c1, c2)
	}
	single := NewPool(1, 0)
	if got := single.SyncCost(); got != 0 {
		t.Fatalf("single-worker SyncCost() = %g, want 0", got)
	}
}

func TestKernelPoolRunAllocFree(t *testing.T) {
	// The full engine dispatch path — refill, scratch reuse, pool Run —
	// must also be allocation-free once warmed.
	g := grid.MustNew([]int{64, 32}, []float64{63, 31})
	k, u := buildDiffusion(t, g, 2)
	for i := range u.Buf(0).Data {
		u.Buf(0).Data[i] = float32(i%13) * 0.5
	}
	syms, err := k.BindSyms(map[string]float64{"dt": 0.1, "h_x": 1, "h_y": 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(4, 0)
	defer p.Close()
	opts := &ExecOpts{Workers: 4, TileRows: 8, Pool: p}
	b := fullDomainBox(&u.Function)
	k.Run(0, b, syms, opts) // warm: grows scratch, fills state
	step := 1
	if avg := testing.AllocsPerRun(20, func() {
		k.Run(step%2, b, syms, opts)
		step++
	}); avg != 0 {
		t.Errorf("kernel pool dispatch allocates %.1f objects/run, want 0", avg)
	}
}
