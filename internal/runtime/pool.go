package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"devigo/internal/obs"
)

// Task is one dispatched kernel invocation: the engines hand the pool an
// object that can execute any tile of the current sweep. RunTile(w, tile)
// executes tile `tile` using worker w's private scratch; tiles partition
// the outer dimension into disjoint row bands, so any assignment of tiles
// to workers produces bit-identical results.
type Task interface {
	RunTile(w, tile int)
}

// cursor is one worker's block-cyclic claim counter, padded to a cache
// line so neighbouring workers' claims never false-share.
type cursor struct {
	next atomic.Int64
	_    [56]byte
}

// Pool is a persistent per-rank worker team — the shared-memory "X" tier
// of the MPI+X hybrid. Workers spawn once (NewPool) and park on a condvar
// between dispatches; Run publishes a Task, bumps the epoch, participates
// as worker 0, and joins. The dispatch path performs no goroutine,
// channel or closure allocation (certified by TestPoolDispatchAllocs), so
// a steady-state timestep costs only the condvar wake/join handshake.
//
// The partition is a deterministic static block-cyclic assignment: worker
// w owns tiles w, w+W, w+2W, ... — the same row bands every timestep, so
// each worker's working set stays resident in its core's private caches
// across steps. With steal=true a worker that drains its own stripe makes
// one bounded pass over the other workers' cursors and claims their
// remaining tiles (each claim is a single atomic increment, so every tile
// still executes exactly once); the operator enables stealing only for
// the shrinking time-tile shell sweeps, whose load imbalance static
// partitioning cannot absorb.
//
// Run must be called from one goroutine at a time (the operator's step
// loop is sequential); the caller doubles as worker 0 and as the
// progress engine for full-mode overlap, prodding the progress hook
// between its own tiles exactly like the sacrificed OpenMP thread of the
// paper's MPI+X full mode.
type Pool struct {
	workers int
	rank    int

	mu   sync.Mutex
	wake *sync.Cond // parked workers wait here for an epoch bump
	join *sync.Cond // the dispatching caller waits here for the team

	epoch   uint64
	running int
	closed  atomic.Bool

	// Dispatch parameters, published under mu before the epoch bump.
	task   Task
	ntiles int
	steal  bool
	step   int

	cursors []cursor
	// finish[w] is worker w's completion time of the current dispatch in
	// nanoseconds since base (written under mu at hand-in).
	finish []int64
	base   time.Time

	syncNs     atomic.Int64
	idleNs     atomic.Int64
	steals     atomic.Int64
	dispatches atomic.Int64

	syncOnce sync.Once
	syncCost float64
}

// PoolStats is a snapshot of the pool's lifetime dispatch counters.
type PoolStats struct {
	// Dispatches is the number of Run calls executed by the team.
	Dispatches int64
	// SyncNs is the caller's cumulative join-barrier wait.
	SyncNs int64
	// IdleNs is the cumulative spawned-worker idle time inside dispatches
	// (sum over workers of join time minus that worker's finish time).
	IdleNs int64
	// Steals is the number of tiles executed by a worker other than their
	// static owner.
	Steals int64
}

// NewPool spawns a persistent team of `workers` workers for one rank.
// The calling goroutine is worker 0; workers-1 goroutines are spawned and
// park immediately. A pool of one worker (or fewer) spawns nothing and
// Run executes inline.
func NewPool(workers, rank int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		rank:    rank,
		cursors: make([]cursor, workers),
		finish:  make([]int64, workers),
		base:    time.Now(),
	}
	p.wake = sync.NewCond(&p.mu)
	p.join = sync.NewCond(&p.mu)
	for w := 1; w < workers; w++ {
		go p.park(w)
	}
	return p
}

// Workers reports the team size (including the caller as worker 0).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Rank reports the MPI rank the pool records its obs counters under.
func (p *Pool) Rank() int { return p.rank }

// Closed reports whether Close has run; a closed pool executes Run inline.
func (p *Pool) Closed() bool { return p.closed.Load() }

// Close releases the spawned workers. Idempotent; Run on a closed pool
// falls back to inline execution, and the owning operator recreates the
// pool on its next Apply.
func (p *Pool) Close() {
	if p == nil || !p.closed.CompareAndSwap(false, true) {
		return
	}
	p.mu.Lock()
	p.wake.Broadcast()
	p.mu.Unlock()
}

// park is the spawned workers' lifetime loop: wait for an epoch bump,
// run the published task's block-cyclic stripe, hand back in, repeat.
func (p *Pool) park(w int) {
	last := uint64(0)
	p.mu.Lock()
	for {
		for p.epoch == last && !p.closed.Load() {
			p.wake.Wait()
		}
		if p.closed.Load() {
			p.mu.Unlock()
			return
		}
		last = p.epoch
		task, ntiles, steal, step := p.task, p.ntiles, p.steal, p.step
		p.mu.Unlock()

		sp := obs.BeginStream(p.rank, obs.WorkerStream(w), obs.PhaseWorker, step)
		p.work(task, w, ntiles, steal, nil)
		sp.End()

		p.mu.Lock()
		p.finish[w] = int64(time.Since(p.base))
		p.running--
		if p.running == 0 {
			p.join.Signal()
		}
	}
}

// work drains worker w's static stripe (tiles w, w+W, ...), then — with
// stealing on — makes one pass over the other workers' cursors claiming
// their leftovers. Each (owner, index) pair is claimed by exactly one
// atomic increment, so every tile runs exactly once regardless of who
// ends up executing it.
func (p *Pool) work(task Task, w, ntiles int, steal bool, progress func()) {
	W := p.workers
	for {
		i := int(p.cursors[w].next.Add(1)) - 1
		tile := w + W*i
		if tile >= ntiles {
			break
		}
		task.RunTile(w, tile)
		if progress != nil {
			progress()
		}
	}
	if !steal {
		return
	}
	for d := 1; d < W; d++ {
		v := (w + d) % W
		for {
			i := int(p.cursors[v].next.Add(1)) - 1
			tile := v + W*i
			if tile >= ntiles {
				break
			}
			p.steals.Add(1)
			task.RunTile(w, tile)
			if progress != nil {
				progress()
			}
		}
	}
}

// Run executes tiles 0..ntiles-1 of the task across the team and returns
// when all have completed. step labels the dispatch's trace spans;
// progress, when non-nil, is prodded by worker 0 between its tiles and
// once before the join (the full-overlap progress engine). Allocation-free
// in steady state.
func (p *Pool) Run(task Task, ntiles, step int, steal bool, progress func()) {
	if p == nil || p.workers <= 1 || ntiles <= 1 || p.closed.Load() {
		for tile := 0; tile < ntiles; tile++ {
			task.RunTile(0, tile)
			if progress != nil {
				progress()
			}
		}
		return
	}
	for w := range p.cursors {
		p.cursors[w].next.Store(0)
	}
	stolen0 := p.steals.Load()

	p.mu.Lock()
	p.task, p.ntiles, p.steal, p.step = task, ntiles, steal, step
	p.running = p.workers - 1
	p.epoch++
	p.wake.Broadcast()
	p.mu.Unlock()

	sp := obs.BeginStream(p.rank, obs.WorkerStream(0), obs.PhaseWorker, step)
	p.work(task, 0, ntiles, steal, progress)
	sp.End()
	if progress != nil {
		progress()
	}

	t0 := time.Now()
	p.mu.Lock()
	for p.running > 0 {
		p.join.Wait()
	}
	joined := int64(time.Since(p.base))
	idle := int64(0)
	for w := 1; w < p.workers; w++ {
		if d := joined - p.finish[w]; d > 0 {
			idle += d
		}
	}
	p.mu.Unlock()
	syncNs := int64(time.Since(t0))

	p.syncNs.Add(syncNs)
	p.idleNs.Add(idle)
	p.dispatches.Add(1)
	if obs.Active() {
		obs.Add(p.rank, obs.CtrPoolSyncNs, syncNs)
		obs.Add(p.rank, obs.CtrPoolIdleNs, idle)
		if stolen := p.steals.Load() - stolen0; stolen > 0 {
			obs.Add(p.rank, obs.CtrStealCount, stolen)
		}
	}
}

// Stats snapshots the lifetime dispatch counters.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Dispatches: p.dispatches.Load(),
		SyncNs:     p.syncNs.Load(),
		IdleNs:     p.idleNs.Load(),
		Steals:     p.steals.Load(),
	}
}

// noopTask is the empty dispatch SyncCost times.
type noopTask struct{}

func (noopTask) RunTile(int, int) {}

// syncCostRounds is how many empty dispatches feed the SyncCost estimate.
const syncCostRounds = 64

// SyncCost measures the pool's per-dispatch fork-join overhead in seconds
// — the wake-broadcast plus join-barrier handshake with no work in
// between — by timing empty dispatches. The first call measures (a few
// hundred microseconds); later calls return the cached figure. The
// autotuner injects it as perfmodel.Host.PoolSync, replacing the default
// with this machine's measured sync term.
func (p *Pool) SyncCost() float64 {
	if p == nil || p.workers <= 1 {
		return 0
	}
	p.syncOnce.Do(func() {
		var tk noopTask
		p.Run(&tk, p.workers, 0, false, nil) // warm the parked team
		t0 := time.Now()
		for i := 0; i < syncCostRounds; i++ {
			p.Run(&tk, p.workers, 0, false, nil)
		}
		p.syncCost = time.Since(t0).Seconds() / syncCostRounds
	})
	return p.syncCost
}
