package devigo

import (
	"fmt"
	"testing"

	"devigo/internal/core"
)

// runPublicDMP executes the miniature seismic workflow through the public
// API on 4 ranks — grid, PDE, operator, source injection, receiver
// interpolation — and returns the rank-0 traces. The exchange interval is
// requested purely through DEVIGO_TIME_TILE (the zero-code-changes path).
func runPublicDMP(t *testing.T, mode string) [][]float64 {
	t.Helper()
	var traces [][]float64
	err := RunDMP(DMPConfig{Ranks: 4, Mode: mode}, func(env *Env) error {
		g, err := env.NewGrid([]int{24, 24}, []float64{23, 23}, []int{2, 2})
		if err != nil {
			return err
		}
		u, err := NewTimeFunction("u", g, 4, 2)
		if err != nil {
			return err
		}
		m, err := NewFunction("m", g, 4)
		if err != nil {
			return err
		}
		if err := m.Data().SetSlice(0, []Slice{SliceAll(), SliceAll()}, 1); err != nil {
			return err
		}
		pde := Sub(Mul(m.At(), u.Dt2()), u.Laplace())
		upd, err := Solve(Eq(pde, Num(0)), u.Forward())
		if err != nil {
			return err
		}
		op, err := NewOperator(g, Assign(u.Forward(), upd))
		if err != nil {
			return err
		}
		src, err := NewSparseFunction("src", g, [][]float64{{11.5, 11.5}})
		if err != nil {
			return err
		}
		rec, err := NewSparseFunction("rec", g, [][]float64{{5.0, 5.0}, {18.0, 18.0}})
		if err != nil {
			return err
		}
		nt, dt := 40, 0.4
		wavelet := RickerWavelet(0.12, 12, dt, nt)
		var local [][]float64
		if err := op.Apply(ApplyConfig{TimeM: 0, TimeN: nt - 1, DT: dt, PostStep: func(tt int) {
			_ = src.Inject(&u.Function, tt+1, []float32{wavelet[tt] * float32(dt*dt)})
			local = append(local, rec.Interpolate(&u.Function, tt+1))
		}}); err != nil {
			return err
		}
		if env.Rank() == 0 {
			traces = local
			if got := op.Config().TimeTile; mode != "none" && got < 1 {
				return fmt.Errorf("bad effective interval %d", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

// DEVIGO_TIME_TILE through the public API must be bit-exact with k=1,
// source injection included: the public SparseFunction.Inject mirrors
// contributions into ghost copies so the redundant shell recompute
// observes the same post-injection data the owning rank has.
func TestPublicAPITimeTileBitExact(t *testing.T) {
	for _, mode := range []string{"basic", "diag", "full"} {
		t.Run(mode, func(t *testing.T) {
			t.Setenv(core.TimeTileEnvVar, "")
			ref := runPublicDMP(t, mode)
			t.Setenv(core.TimeTileEnvVar, "4")
			tiled := runPublicDMP(t, mode)
			for tt := range ref {
				for r := range ref[tt] {
					if ref[tt][r] != tiled[tt][r] {
						t.Fatalf("trace (%d,%d) diverges under DEVIGO_TIME_TILE=4: %v vs %v",
							tt, r, ref[tt][r], tiled[tt][r])
					}
				}
			}
		})
	}
}
